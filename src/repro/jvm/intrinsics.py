"""Bootstrap classes and their native-method implementations.

The mini-JVM's analogue of the JDK bootstrap classes the paper discusses
in §4.1: ``Object`` (wait/notify), ``Thread``, ``Math``, ``Sys`` (console
and clock — the low-level I/O the rewriter cannot transform) and
``String``.  Native methods are Python functions registered per
``(class, method)``; the distributed runtime supplies *rewritten*
versions of these classes whose natives route through the DSM (see
:mod:`repro.rewriter.bootstrap`), exactly as the paper hand-wraps native
bootstrap classes.

A native returns a value, ``NO_VALUE`` (void), or ``BLOCK`` if it parked
the calling thread after arranging its own completion.
"""

from __future__ import annotations

import math
from typing import Any, List

from .assembler import ClassBuilder
from .bytecode import Op
from .classfile import ClassFile
from .errors import IllegalMonitorStateError, JavaRuntimeError
from .heap import monitor_of
from .interpreter import BLOCK, NO_VALUE, jstr

# ---------------------------------------------------------------------------
# Bootstrap class files
# ---------------------------------------------------------------------------

def bootstrap_classfiles() -> List[ClassFile]:
    """Class files for the bootstrap library (shared, immutable)."""
    # Object --------------------------------------------------------------
    obj = ClassBuilder("Object", super_name=None, is_bootstrap=True)
    obj.classfile.super_name = None
    obj.native_method("wait")
    obj.native_method("notify")
    obj.native_method("notifyAll")
    # <init> is a no-op so `super()` chains terminate.
    init = obj.method("<init>")
    init.ret()
    obj.finish(init)

    # Thread --------------------------------------------------------------
    th = ClassBuilder("Thread", is_bootstrap=True)
    th.field("priority", "int", init=5)
    th.field("started", "int")
    th.field("finished", "int")
    th.native_method("start")
    th.native_method("join")
    th.native_method("setPriority", params=["int"])
    th.native_method("getPriority", ret="int")
    init = th.method("<init>")
    init.load(0)
    init.invoke(Op.INVOKESPECIAL, "Object", "<init>")
    init.ret()
    th.finish(init)
    run = th.method("run")  # default run() does nothing
    run.ret()
    th.finish(run)

    # Math ----------------------------------------------------------------
    m = ClassBuilder("Math", is_bootstrap=True)
    for name in ("sqrt", "sin", "cos", "tan", "log", "exp", "floor", "ceil", "abs"):
        m.native_method(name, params=["double"], ret="double", static=True)
    m.native_method("pow", params=["double", "double"], ret="double", static=True)
    m.native_method("atan2", params=["double", "double"], ret="double", static=True)
    m.native_method("iabs", params=["int"], ret="int", static=True)
    m.native_method("imin", params=["int", "int"], ret="int", static=True)
    m.native_method("imax", params=["int", "int"], ret="int", static=True)
    m.native_method("min", params=["double", "double"], ret="double", static=True)
    m.native_method("max", params=["double", "double"], ret="double", static=True)

    # Sys -----------------------------------------------------------------
    s = ClassBuilder("Sys", is_bootstrap=True)
    s.native_method("print", params=["str"], static=True)
    s.native_method("println", params=["str"], static=True)
    s.native_method("currentTimeMillis", ret="int", static=True)
    s.native_method("nanoTime", ret="int", static=True)

    # String --------------------------------------------------------------
    st = ClassBuilder("String", is_bootstrap=True)
    st.native_method("length", ret="int")
    st.native_method("charAt", params=["int"], ret="int")
    st.native_method("substring", params=["int", "int"], ret="str")
    st.native_method("equalsStr", params=["str"], ret="int")
    st.native_method("indexOf", params=["str"], ret="int")

    # Serve ----------------------------------------------------------------
    # Request ingestion for serving workloads (src/repro/serve): the
    # open-loop load generator injects arrivals as simulation events and
    # hands them to the program through these natives.  ``next`` blocks
    # the calling thread until the next arrival for the tenant is due
    # (or returns -1 when the schedule is exhausted); ``done`` reports a
    # request completed so the runtime can record its latency.  Appended
    # after the original bootstrap classes so existing class ids are
    # unchanged.
    sv = ClassBuilder("Serve", is_bootstrap=True)
    sv.native_method("next", params=["int"], ret="int", static=True)
    sv.native_method("done", params=["int", "int"], static=True)

    return [obj.build(), th.build(), m.build(), s.build(), st.build(),
            sv.build()]


BOOTSTRAP_CLASS_NAMES = frozenset(
    {"Object", "Thread", "Math", "Sys", "String", "Serve"}
)


# ---------------------------------------------------------------------------
# Native implementations (un-instrumented / single-JVM semantics)
# ---------------------------------------------------------------------------

def _nat_wait(jvm, thread, args):
    receiver = args[0]
    mon = monitor_of(receiver)
    if mon.owner is not thread:
        raise IllegalMonitorStateError("wait() by non-owner")
    saved = mon.count
    mon.owner = None
    mon.count = 0
    mon.wait_set.append((thread, saved))
    jvm.interpreter.grant_next(mon)
    return BLOCK


def _nat_notify(jvm, thread, args):
    mon = monitor_of(args[0])
    if mon.owner is not thread:
        raise IllegalMonitorStateError("notify() by non-owner")
    if mon.wait_set:
        mon.entry_queue.append(mon.wait_set.popleft())
    return NO_VALUE


def _nat_notify_all(jvm, thread, args):
    mon = monitor_of(args[0])
    if mon.owner is not thread:
        raise IllegalMonitorStateError("notifyAll() by non-owner")
    while mon.wait_set:
        mon.entry_queue.append(mon.wait_set.popleft())
    return NO_VALUE


def _thread_field(jvm, obj, name):
    return obj.fields[jvm.field_index("Thread", name)]


def _set_thread_field(jvm, obj, name, value):
    obj.fields[jvm.field_index("Thread", name)] = value


def _nat_thread_start(jvm, thread, args):
    tobj = args[0]
    if _thread_field(jvm, tobj, "started"):
        raise JavaRuntimeError("thread already started")
    _set_thread_field(jvm, tobj, "started", 1)
    jvm.start_thread_obj(tobj, priority=_thread_field(jvm, tobj, "priority"))
    return NO_VALUE


def _nat_thread_join(jvm, thread, args):
    tobj = args[0]
    target = jvm.live_jthreads.get(id(tobj))
    if target is None:
        return NO_VALUE  # finished (or never started): join returns at once
    target.joiners.append(thread)
    return BLOCK


def _nat_set_priority(jvm, thread, args):
    tobj, prio = args
    if not 1 <= prio <= 10:
        raise JavaRuntimeError(f"priority {prio} out of range")
    _set_thread_field(jvm, tobj, "priority", prio)
    live = jvm.live_jthreads.get(id(tobj))
    if live is not None:
        live.priority = prio
    return NO_VALUE


def _nat_get_priority(jvm, thread, args):
    return _thread_field(jvm, args[0], "priority")


def _nat_print(jvm, thread, args):
    jvm.println(jstr(args[0]))
    return NO_VALUE


def _nat_time_millis(jvm, thread, args):
    return jvm.node.engine.now // 1_000_000


def _nat_nano_time(jvm, thread, args):
    return jvm.node.engine.now


def _serve_feed(jvm):
    feed = getattr(jvm, "serve_feed", None)
    if feed is None:
        raise JavaRuntimeError(
            "Serve.* natives need an attached load feed "
            "(see repro.serve.manager.ServeManager)")
    return feed


def _nat_serve_next(jvm, thread, args):
    # Returns the encoded request (or -1 when exhausted), or BLOCK after
    # the feed arranged thread.complete() at the next arrival's sim time.
    return _serve_feed(jvm).next(thread, args[0])


def _nat_serve_done(jvm, thread, args):
    _serve_feed(jvm).done(thread, args[0], args[1])
    return NO_VALUE


_MATH_UNARY = {
    "sqrt": math.sqrt, "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "log": math.log, "exp": math.exp,
    "floor": math.floor, "ceil": math.ceil, "abs": abs,
}


def register_standard_natives(jvm) -> None:
    """Install the bootstrap natives into a JVM instance."""
    reg = jvm.register_native
    reg("Object", "wait", _nat_wait)
    reg("Object", "notify", _nat_notify)
    reg("Object", "notifyAll", _nat_notify_all)

    reg("Thread", "start", _nat_thread_start)
    reg("Thread", "join", _nat_thread_join)
    reg("Thread", "setPriority", _nat_set_priority)
    reg("Thread", "getPriority", _nat_get_priority)

    for name, fn in _MATH_UNARY.items():
        if name in ("floor", "ceil"):
            reg("Math", name, lambda j, t, a, f=fn: float(f(a[0])))
        else:
            reg("Math", name, lambda j, t, a, f=fn: f(a[0]))
    reg("Math", "pow", lambda j, t, a: math.pow(a[0], a[1]))
    reg("Math", "atan2", lambda j, t, a: math.atan2(a[0], a[1]))
    reg("Math", "iabs", lambda j, t, a: abs(a[0]))
    reg("Math", "imin", lambda j, t, a: min(a[0], a[1]))
    reg("Math", "imax", lambda j, t, a: max(a[0], a[1]))
    reg("Math", "min", lambda j, t, a: min(a[0], a[1]))
    reg("Math", "max", lambda j, t, a: max(a[0], a[1]))

    reg("Sys", "print", _nat_print)
    reg("Sys", "println", _nat_print)
    reg("Sys", "currentTimeMillis", _nat_time_millis)
    reg("Sys", "nanoTime", _nat_nano_time)

    reg("Serve", "next", _nat_serve_next)
    reg("Serve", "done", _nat_serve_done)

    reg("String", "length", lambda j, t, a: len(a[0]))
    reg("String", "charAt", lambda j, t, a: ord(a[0][a[1]]))
    reg("String", "substring", lambda j, t, a: a[0][a[1]:a[2]])
    reg("String", "equalsStr", lambda j, t, a: 1 if a[0] == a[1] else 0)
    reg("String", "indexOf", lambda j, t, a: a[0].find(a[1]))
