"""Bytecode disassembler: human-readable class-file listings.

Primarily a rewriter-inspection tool: diffing the listing of an original
class against its ``javasplit.*`` twin shows exactly what the
instrumentation did (the paper's Figure 2/3, regenerable for any class).
"""

from __future__ import annotations

from typing import Iterable, List

from .bytecode import BRANCHES, Instr, Op
from .classfile import ClassFile, MethodInfo


def format_instr(pc: int, instr: Instr) -> str:
    parts = [f"{pc:4d}  {instr.op.name}"]
    if instr.op is Op.GOTO:
        parts.append(f"-> {instr.a}")
    elif instr.op in (Op.IF, Op.IF_CMP):
        parts.append(f"{instr.a} -> {instr.b}")
    else:
        if instr.a is not None:
            parts.append(repr(instr.a))
        if instr.b is not None:
            parts.append(repr(instr.b))
    if instr.checked:
        parts.append("[checked]" if instr.checked is True else "[checked:static]")
    return " ".join(parts)


def disassemble_method(method: MethodInfo) -> str:
    flags = " ".join(sorted(method.flags))
    sig = f"{method.ret} {method.name}({', '.join(method.params)})"
    header = f"  {flags + ' ' if flags else ''}{sig}"
    if method.is_native:
        return header + "  [native]"
    lines = [header, f"    max_locals={method.max_locals}"]
    targets = set()
    for instr in method.code:
        if instr.op is Op.GOTO:
            targets.add(instr.a)
        elif instr.op in BRANCHES:
            targets.add(instr.b)
    for pc, instr in enumerate(method.code):
        marker = ">" if pc in targets else " "
        lines.append(f"   {marker}{format_instr(pc, instr)}")
    return "\n".join(lines)


def disassemble_class(cf: ClassFile) -> str:
    lines = [f"class {cf.name} extends {cf.super_name or '<root>'}"
             + ("  [instrumented]" if cf.instrumented else "")]
    for f in cf.fields:
        mods = []
        if f.is_static:
            mods.append("static")
        if f.volatile:
            mods.append("volatile")
        init = f" = {f.init!r}" if f.init is not None else ""
        lines.append(f"  {' '.join(mods + [f.type, f.name])}{init}")
    for method in cf.methods.values():
        lines.append("")
        lines.append(disassemble_method(method))
    return "\n".join(lines)


def disassemble(classfiles: Iterable[ClassFile]) -> str:
    return "\n\n".join(disassemble_class(cf) for cf in classfiles)
