"""Bytecode disassembler: human-readable class-file listings.

Primarily a rewriter-inspection tool: diffing the listing of an original
class against its ``javasplit.*`` twin shows exactly what the
instrumentation did (the paper's Figure 2/3, regenerable for any class).

With ``costs=<brand>`` the listing additionally shows what the tiered
JIT sees: each straight-line run of pure ops is bracketed with its
pre-summed simulated cost (the one addition tier-1 code charges at run
entry), and check-elimination notes (``method.elim_notes``, written by
the level-1/2 passes) annotate the instructions whose access checks
were removed or hoisted.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .bytecode import BRANCHES, Instr, Op
from .classfile import ClassFile, MethodInfo

CostTables = Tuple[List[int], List[int], List[int]]


def resolve_cost_tables(brand: str, profile: str = "micro") -> CostTables:
    """(plain, checked, static) per-opcode tables for a JVM brand."""
    from ..jit.analysis import build_cost_tables
    from ..sim.cost_model import get_brand
    return build_cost_tables(get_brand(brand, profile))


def format_instr(pc: int, instr: Instr) -> str:
    parts = [f"{pc:4d}  {instr.op.name}"]
    if instr.op is Op.GOTO:
        parts.append(f"-> {instr.a}")
    elif instr.op in (Op.IF, Op.IF_CMP):
        parts.append(f"{instr.a} -> {instr.b}")
    else:
        if instr.a is not None:
            parts.append(repr(instr.a))
        if instr.b is not None:
            parts.append(repr(instr.b))
    if instr.checked:
        parts.append("[checked]" if instr.checked is True else "[checked:static]")
    return " ".join(parts)


def disassemble_method(method: MethodInfo,
                       costs: Optional[CostTables] = None) -> str:
    flags = " ".join(sorted(method.flags))
    sig = f"{method.ret} {method.name}({', '.join(method.params)})"
    header = f"  {flags + ' ' if flags else ''}{sig}"
    if method.is_native:
        return header + "  [native]"
    lines = [header, f"    max_locals={method.max_locals}"]
    targets = set()
    for instr in method.code:
        if instr.op is Op.GOTO:
            targets.add(instr.a)
        elif instr.op in BRANCHES:
            targets.add(instr.b)
    elim_notes = getattr(method, "elim_notes", None) or {}
    run_start = {}
    if costs is not None:
        from ..jit.analysis import pre_summed_runs
        for start, end, total in pre_summed_runs(method, *costs):
            run_start[start] = (end, total)
    for pc, instr in enumerate(method.code):
        run = run_start.get(pc)
        if run is not None:
            end, total = run
            span = (f"pc {pc}" if end == pc + 1
                    else f"pc {pc}..{end - 1}")
            lines.append(f"      ; run {span}: {total} ns pre-summed")
        marker = ">" if pc in targets else " "
        text = f"   {marker}{format_instr(pc, instr)}"
        note = elim_notes.get(pc)
        if note:
            text += f"  ; elim: {note}"
        lines.append(text)
    return "\n".join(lines)


def disassemble_class(cf: ClassFile,
                      costs: Optional[CostTables] = None) -> str:
    lines = [f"class {cf.name} extends {cf.super_name or '<root>'}"
             + ("  [instrumented]" if cf.instrumented else "")]
    for f in cf.fields:
        mods = []
        if f.is_static:
            mods.append("static")
        if f.volatile:
            mods.append("volatile")
        init = f" = {f.init!r}" if f.init is not None else ""
        lines.append(f"  {' '.join(mods + [f.type, f.name])}{init}")
    for method in cf.methods.values():
        lines.append("")
        lines.append(disassemble_method(method, costs))
    return "\n".join(lines)


def disassemble(classfiles: Iterable[ClassFile],
                costs: Optional[CostTables] = None) -> str:
    return "\n\n".join(disassemble_class(cf, costs) for cf in classfiles)
