"""Programmatic bytecode assembler.

A small builder API over :class:`ClassFile` / :class:`MethodInfo` with
symbolic labels, used by the compiler backend, the bytecode rewriter's
hand-written bootstrap classes, and tests.  (The paper's analogue is
BCEL's generator API.)
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from .bytecode import BRANCHES, Instr, Op
from .classfile import ClassFile, FieldInfo, MethodInfo
from .errors import ClassFormatError


class Label:
    """A forward-referencable branch target."""

    __slots__ = ("pc", "name")

    def __init__(self, name: str = "") -> None:
        self.pc: Optional[int] = None
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Label({self.name or id(self):#x}->{self.pc})"


class MethodBuilder:
    """Builds one method's instruction list, resolving labels at finish."""

    def __init__(
        self,
        name: str,
        params: Iterable[str] = (),
        ret: str = "void",
        flags: Iterable[str] = (),
        max_locals: Optional[int] = None,
    ) -> None:
        self.name = name
        self.params = list(params)
        self.ret_type = ret
        self.flags = frozenset(flags)
        self._code: List[Instr] = []
        self._max_locals = max_locals
        self._next_local = len(self.params) + (0 if "static" in self.flags else 1)

    # ------------------------------------------------------------------
    def emit(self, op: Op, a: Any = None, b: Any = None, line: int = 0) -> Instr:
        """Append one instruction; returns it for later patching."""
        instr = Instr(op, a, b, line=line)
        self._code.append(instr)
        return instr

    def label(self, name: str = "") -> Label:
        """Create an unbound label."""
        return Label(name)

    def mark(self, label: Label) -> Label:
        """Bind a label to the next instruction's pc."""
        if label.pc is not None:
            raise ClassFormatError(f"label {label} marked twice")
        label.pc = len(self._code)
        return label

    def alloc_local(self, count: int = 1) -> int:
        """Reserve local slots beyond the parameters; returns first index."""
        idx = self._next_local
        self._next_local += count
        return idx

    @property
    def pc(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._code)

    # Convenience emitters -------------------------------------------------
    def const(self, value: Any) -> Instr:
        """Push a literal."""
        return self.emit(Op.CONST, value)

    def load(self, idx: int) -> Instr:
        """Load a local slot."""
        return self.emit(Op.LOAD, idx)

    def store(self, idx: int) -> Instr:
        """Store into a local slot."""
        return self.emit(Op.STORE, idx)

    def goto(self, label: Label) -> Instr:
        """Unconditional branch."""
        return self.emit(Op.GOTO, label)

    def if_(self, cond: str, label: Label) -> Instr:
        """Branch comparing the top of stack against zero/null."""
        return self.emit(Op.IF, cond, label)

    def if_cmp(self, cond: str, label: Label) -> Instr:
        """Branch comparing the top two stack values."""
        return self.emit(Op.IF_CMP, cond, label)

    def invoke(self, kind: Op, klass: str, method: str) -> Instr:
        """Emit an invocation (INVOKEVIRTUAL / INVOKESTATIC / INVOKESPECIAL)."""
        return self.emit(kind, klass, method)

    def ret(self) -> Instr:
        """Emit RETURN (void)."""
        return self.emit(Op.RETURN)

    def retval(self) -> Instr:
        """Emit RETVAL (return the top of stack)."""
        return self.emit(Op.RETVAL)

    # ------------------------------------------------------------------
    def build(self) -> MethodInfo:
        """Resolve labels and produce the immutable MethodInfo."""
        code: List[Instr] = []
        for instr in self._code:
            resolved = instr  # instructions are single-use; patch in place
            if instr.op in BRANCHES:
                target = instr.b if instr.op in (Op.IF, Op.IF_CMP) else instr.a
                if isinstance(target, Label):
                    if target.pc is None:
                        raise ClassFormatError(
                            f"unresolved label in {self.name}: {target}"
                        )
                    if instr.op is Op.GOTO:
                        resolved.a = target.pc
                    else:
                        resolved.b = target.pc
            code.append(resolved)
        return MethodInfo(
            name=self.name,
            params=self.params,
            ret=self.ret_type,
            code=code,
            max_locals=max(self._max_locals or 0, self._next_local),
            flags=self.flags,
        )


class ClassBuilder:
    """Builds a :class:`ClassFile`."""

    def __init__(
        self,
        name: str,
        super_name: str = "Object",
        is_bootstrap: bool = False,
    ) -> None:
        self.classfile = ClassFile(name, super_name, is_bootstrap)

    def field(
        self,
        name: str,
        type_: str,
        is_static: bool = False,
        init: Any = None,
        volatile: bool = False,
    ) -> "ClassBuilder":
        self.classfile.add_field(FieldInfo(name, type_, is_static, init, volatile))
        return self

    def method(
        self,
        name: str,
        params: Iterable[str] = (),
        ret: str = "void",
        flags: Iterable[str] = (),
        max_locals: Optional[int] = None,
    ) -> MethodBuilder:
        """Start a method; call :meth:`finish` with the returned builder."""
        return MethodBuilder(name, params, ret, flags, max_locals=max_locals)

    def finish(self, mb: MethodBuilder) -> "ClassBuilder":
        """Build the method and add it to the class."""
        self.classfile.add_method(mb.build())
        return self

    def native_method(
        self,
        name: str,
        params: Iterable[str] = (),
        ret: str = "void",
        static: bool = False,
    ) -> "ClassBuilder":
        flags = {"native"} | ({"static"} if static else set())
        mb = MethodBuilder(name, params, ret, flags)
        self.classfile.add_method(mb.build())
        return self

    def build(self) -> ClassFile:
        """The finished class file."""
        return self.classfile
