"""Activation frames: operand stack + local variable slots."""

from __future__ import annotations

from typing import Any, List

from .classfile import MethodInfo


class Frame:
    """One method activation.

    Locals layout follows the JVM convention: for instance methods slot 0
    is ``this`` and parameters occupy slots 1..n; for static methods
    parameters start at slot 0.
    """

    __slots__ = ("method", "locals", "stack", "pc")

    def __init__(self, method: MethodInfo, args: List[Any]) -> None:
        self.method = method
        nlocals = max(method.max_locals, len(args))
        self.locals: List[Any] = args + [None] * (nlocals - len(args))
        self.stack: List[Any] = []
        self.pc: int = 0

    def push(self, value: Any) -> None:
        """Push onto the operand stack."""
        self.stack.append(value)

    def pop(self) -> Any:
        """Pop the operand stack."""
        return self.stack.pop()

    def peek(self, depth: int = 0) -> Any:
        """Read the stack at a depth without popping."""
        return self.stack[-1 - depth]

    def where(self) -> str:
        """Human-readable position, for error messages."""
        m = self.method
        line = ""
        if 0 <= self.pc < len(m.code) and m.code[self.pc].line:
            line = f" (line {m.code[self.pc].line})"
        return f"{m.klass}.{m.name} pc={self.pc}{line}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.where()}, stack={len(self.stack)})"
