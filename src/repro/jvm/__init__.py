"""The mini-JVM substrate.

A stack-based, Java-flavoured virtual machine: bytecode ISA
(:mod:`~repro.jvm.bytecode`), class files (:mod:`~repro.jvm.classfile`),
a programmatic assembler (:mod:`~repro.jvm.assembler`), heap/object model
(:mod:`~repro.jvm.heap`), a steppable interpreter
(:mod:`~repro.jvm.interpreter`), bootstrap classes + natives
(:mod:`~repro.jvm.intrinsics`), a structural verifier
(:mod:`~repro.jvm.verifier`) and the JVM instance itself
(:mod:`~repro.jvm.jvm`).

Stands in for the unmodified commodity JVMs of the paper; the JavaSplit
layers above it only ever see class files and the DSM hook interface.
"""

from .assembler import ClassBuilder, Label, MethodBuilder
from .bytecode import DSM_OPS, Instr, Op
from .classfile import (
    CONSTRUCTOR,
    ClassFile,
    FieldInfo,
    MethodInfo,
    default_value,
    is_array_type,
    is_ref_type,
)
from .errors import (
    ArithmeticJavaError,
    ArrayIndexError,
    ClassCastError,
    ClassFormatError,
    IllegalMonitorStateError,
    JavaRuntimeError,
    JVMError,
    LinkError,
    NullPointerError,
)
from .frame import Frame
from .heap import ArrayObj, LocalMonitor, Obj, monitor_of
from .interpreter import BLOCK, NO_VALUE, Interpreter, jstr
from .intrinsics import BOOTSTRAP_CLASS_NAMES, bootstrap_classfiles
from .jvm import JThread, JVM, RuntimeClass
from .verifier import Verifier, verify_classfiles

__all__ = [
    "ClassBuilder", "Label", "MethodBuilder",
    "DSM_OPS", "Instr", "Op",
    "CONSTRUCTOR", "ClassFile", "FieldInfo", "MethodInfo",
    "default_value", "is_array_type", "is_ref_type",
    "ArithmeticJavaError", "ArrayIndexError", "ClassCastError",
    "ClassFormatError", "IllegalMonitorStateError", "JavaRuntimeError",
    "JVMError", "LinkError", "NullPointerError",
    "Frame", "ArrayObj", "LocalMonitor", "Obj", "monitor_of",
    "BLOCK", "NO_VALUE", "Interpreter", "jstr",
    "BOOTSTRAP_CLASS_NAMES", "bootstrap_classfiles",
    "JThread", "JVM", "RuntimeClass",
    "Verifier", "verify_classfiles",
]
