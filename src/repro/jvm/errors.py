"""Error hierarchy for the mini-JVM.

``JavaRuntimeError`` subclasses model the runtime exceptions a real JVM
would throw (NPE, bounds, arithmetic...).  They abort the offending
simulated thread; the benchmark programs in this repo are written not to
trigger them, so surfacing them as Python exceptions keeps failures loud
in tests instead of silently corrupting results.
"""

from __future__ import annotations


class JVMError(Exception):
    """Base class for all mini-JVM errors (load-time and run-time)."""


class ClassFormatError(JVMError):
    """A class file is structurally invalid (verifier / linker)."""


class LinkError(JVMError):
    """Unresolvable class, field or method reference."""


class JavaRuntimeError(JVMError):
    """Base for errors a Java program would see as a runtime exception."""

    java_name = "java.lang.RuntimeException"


class NullPointerError(JavaRuntimeError):
    """Heap access through a null reference."""
    java_name = "java.lang.NullPointerException"


class ArrayIndexError(JavaRuntimeError):
    """Array index outside [0, length)."""
    java_name = "java.lang.ArrayIndexOutOfBoundsException"


class NegativeArraySizeError(JavaRuntimeError):
    """Array allocation with a negative length."""
    java_name = "java.lang.NegativeArraySizeException"


class ArithmeticJavaError(JavaRuntimeError):
    """Integer division or remainder by zero."""
    java_name = "java.lang.ArithmeticException"


class ClassCastError(JavaRuntimeError):
    """checkcast to an incompatible class."""
    java_name = "java.lang.ClassCastException"


class IllegalMonitorStateError(JavaRuntimeError):
    """Monitor operation by a thread that does not own it."""
    java_name = "java.lang.IllegalMonitorStateException"
