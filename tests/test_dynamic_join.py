"""Dynamic worker join (§2): new nodes enlist mid-execution."""

import pytest

from repro.check.faults import FaultInjector, FaultPlan
from repro.check.monitor import InvariantMonitor
from repro.check.oracle import SingleCopyOracle
from repro.check.runner import parse_kill, parse_locality, parse_policy
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import ConfigError, JavaSplitRuntime, RuntimeConfig
from repro.sim import NS_PER_MS

TWO_WAVES = """
class Counter { int v; }
class Incr extends Thread {
    Counter c;
    Incr(Counter c) { this.c = c; }
    void run() {
        for (int i = 0; i < 40; i++) { synchronized (c) { c.v += 1; } }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        Incr[] first = new Incr[4];
        for (int i = 0; i < 4; i++) { first[i] = new Incr(c); first[i].start(); }
        for (int i = 0; i < 4; i++) { first[i].join(); }
        // Second wave: by now a new node has joined the pool.
        Incr[] second = new Incr[4];
        for (int i = 0; i < 4; i++) { second[i] = new Incr(c); second[i].start(); }
        for (int i = 0; i < 4; i++) { second[i].join(); }
        return c.v;
    }
}
"""


def _runtime(**config_kwargs):
    config_kwargs.setdefault("num_nodes", 2)
    return JavaSplitRuntime(
        rewrite_application(compile_source(TWO_WAVES)),
        RuntimeConfig(**config_kwargs),
    )


def test_joined_worker_receives_threads():
    rt = _runtime()
    rt.schedule_join(2 * NS_PER_MS)
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 3
    # The late node took some of the second wave.
    assert report.placements.get(2, 0) > 0


def test_joined_worker_faults_in_shared_state():
    rt = _runtime()
    rt.schedule_join(2 * NS_PER_MS)
    rt.run()
    late = rt.workers[2]
    assert late.dsm.stats.fetches > 0
    assert len(late.jvm.classes) == len(rt.registry)


def test_join_with_different_brand():
    rt = _runtime()
    rt.schedule_join(2 * NS_PER_MS, brand="ibm")
    report = rt.run()
    assert report.result == 320
    assert rt.workers[2].jvm.cost_model.brand == "ibm"


def test_multiple_joins():
    rt = _runtime()
    rt.schedule_join(1 * NS_PER_MS)
    rt.schedule_join(2 * NS_PER_MS)
    rt.schedule_join(3 * NS_PER_MS)
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 5


def test_join_after_quiesce_is_harmless():
    """A node joining when all work is done just idles."""
    rt = _runtime()
    rt.schedule_join(10_000 * NS_PER_MS)  # far after completion
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 3
    assert rt.workers[2].node.idle


# ---------------------------------------------------------------------------
# Joins composed with the other subsystems, under the oracle
# ---------------------------------------------------------------------------

def _checked_run(rt):
    """Run under the invariant monitor + single-copy oracle; any
    violation fails the test."""
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    report = rt.run()
    monitor.finalize()
    oracle.finalize()
    assert not monitor.violations, monitor.violations
    assert not oracle.violations, oracle.violations
    assert oracle.checked_installs > 0
    return report


def test_join_with_locality_all_oracle_clean():
    """A mid-run join while migration/prefetch/aggregation are live:
    the late node participates in the locality machinery too."""
    rt = _runtime(net_jitter_ns=2 * NS_PER_MS, **parse_locality("all"))
    rt.schedule_join(2 * NS_PER_MS, brand="ibm")
    report = _checked_run(rt)
    assert report.result == 320
    assert len(rt.workers) == 3


def test_join_with_policy_all_oracle_clean():
    """A mid-run join with all adaptive coherence policies on."""
    rt = _runtime(net_jitter_ns=2 * NS_PER_MS, **parse_policy("all"))
    rt.schedule_join(2 * NS_PER_MS)
    report = _checked_run(rt)
    assert report.result == 320
    assert len(rt.workers) == 3


def test_join_plus_kill_oracle_clean():
    """One worker joins while another is killed: churn in both
    directions at once.  The restarted Incr threads redo increments
    from scratch, so the exact count may exceed 320 — the contract
    under a kill is completion plus an oracle-clean heap."""
    rt = _runtime(num_nodes=3, net_jitter_ns=2 * NS_PER_MS,
                  reliable_transport=True, ft_enabled=True)
    rt.schedule_join(2 * NS_PER_MS)
    plan = FaultPlan(seed=3)
    plan.detach_node, plan.detach_at_ns = parse_kill(
        "random", seed=3, nodes=3)
    FaultInjector.attach(rt, plan)
    report = _checked_run(rt)
    assert report.result is not None and report.result >= 320
    assert len(rt.workers) == 4
    assert report.ft is not None and len(report.ft["recoveries"]) == 1


# ---------------------------------------------------------------------------
# Joins on the proc backend (late worker process fork)
# ---------------------------------------------------------------------------

def test_join_on_proc_backend_forks_live_worker():
    """schedule_join on the proc backend forks a real worker process
    mid-run that handshakes and serves its share of the second wave."""
    rt = _runtime(transport_backend="proc")
    rt.schedule_join(2 * NS_PER_MS)
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 3
    assert report.placements.get(2, 0) > 0


def test_join_on_proc_backend_guarded_when_disabled():
    """With proc_late_spawn=False the join is rejected up front with a
    clear ConfigError instead of dying inside the event loop."""
    rt = _runtime(transport_backend="proc", proc_late_spawn=False)
    with pytest.raises(ConfigError, match="proc_late_spawn"):
        rt.schedule_join(2 * NS_PER_MS)
    # The cluster itself is still usable without the join.
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 2
