"""Dynamic worker join (§2): new nodes enlist mid-execution."""

import pytest

from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig
from repro.sim import NS_PER_MS

TWO_WAVES = """
class Counter { int v; }
class Incr extends Thread {
    Counter c;
    Incr(Counter c) { this.c = c; }
    void run() {
        for (int i = 0; i < 40; i++) { synchronized (c) { c.v += 1; } }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        Incr[] first = new Incr[4];
        for (int i = 0; i < 4; i++) { first[i] = new Incr(c); first[i].start(); }
        for (int i = 0; i < 4; i++) { first[i].join(); }
        // Second wave: by now a new node has joined the pool.
        Incr[] second = new Incr[4];
        for (int i = 0; i < 4; i++) { second[i] = new Incr(c); second[i].start(); }
        for (int i = 0; i < 4; i++) { second[i].join(); }
        return c.v;
    }
}
"""


def _runtime():
    return JavaSplitRuntime(
        rewrite_application(compile_source(TWO_WAVES)),
        RuntimeConfig(num_nodes=2),
    )


def test_joined_worker_receives_threads():
    rt = _runtime()
    rt.schedule_join(2 * NS_PER_MS)
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 3
    # The late node took some of the second wave.
    assert report.placements.get(2, 0) > 0


def test_joined_worker_faults_in_shared_state():
    rt = _runtime()
    rt.schedule_join(2 * NS_PER_MS)
    rt.run()
    late = rt.workers[2]
    assert late.dsm.stats.fetches > 0
    assert len(late.jvm.classes) == len(rt.registry)


def test_join_with_different_brand():
    rt = _runtime()
    rt.schedule_join(2 * NS_PER_MS, brand="ibm")
    report = rt.run()
    assert report.result == 320
    assert rt.workers[2].jvm.cost_model.brand == "ibm"


def test_multiple_joins():
    rt = _runtime()
    rt.schedule_join(1 * NS_PER_MS)
    rt.schedule_join(2 * NS_PER_MS)
    rt.schedule_join(3 * NS_PER_MS)
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 5


def test_join_after_quiesce_is_harmless():
    """A node joining when all work is done just idles."""
    rt = _runtime()
    rt.schedule_join(10_000 * NS_PER_MS)  # far after completion
    report = rt.run()
    assert report.result == 320
    assert len(rt.workers) == 3
    assert rt.workers[2].node.idle
