"""Telemetry subsystem: metrics registry / span recorder / stall
profiler units, Chrome trace-event export + validation, passivity
(knobs-off byte-identity and metrics/profile traffic-neutrality),
end-to-end causal lock-acquire trees on tsp, stall attribution
ranking, and composition with the consistency oracle."""

import json

import pytest

from repro.check import run_check
from repro.lang import compile_source
from repro.obs import (MetricsRegistry, ObsManager, SpanRecorder,
                       StallProfiler, current_site, site_label,
                       validate_chrome_trace)
from repro.obs.metrics import Histogram
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig

SYNC_COUNTER_SRC = """
class Counter { int v; }
class W extends Thread {
    Counter c;
    W(Counter c) { this.c = c; }
    void run() {
        for (int i = 0; i < 8; i++) {
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        W a = new W(c); W b = new W(c);
        a.start(); b.start(); a.join(); b.join();
        return c.v;
    }
}
"""


def _runtime(src, nodes=3, **cfg):
    classfiles = compile_source(src)
    rewritten = rewrite_application(classfiles)
    cfg.setdefault("scheduler", "round-robin")
    return JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=nodes, **cfg))


def _app_runtime(app, **cfg):
    from repro.check.runner import app_source

    return _runtime(app_source(app), **cfg)


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------
def test_histogram_buckets_and_stats():
    h = Histogram()
    for v in (0, 1, 2, 3, 1000):
        h.observe(v)
    assert h.count == 5
    assert h.total == 1006
    assert (h.min, h.max) == (0, 1000)
    assert h.mean == pytest.approx(201.2)
    # 0 and 1 share bucket 0; 2 -> bucket 1; 3 -> bucket 2; 1000 -> 2^10.
    assert h.buckets == {0: 2, 1: 1, 2: 1, 10: 1}
    assert h.quantile(0.5) == 2          # 3rd of 5 samples sits in bucket 1
    # Interpolated to the top of bucket 10 (1024), clamped to max=1000.
    assert h.quantile(1.0) == 1000
    d = h.as_dict()
    assert d["count"] == 5 and d["buckets"]["1024"] == 1
    assert d["p999"] == 1000


def test_histogram_quantile_interpolates_within_bucket():
    h = Histogram()
    for _ in range(100):
        h.observe(10)                    # bucket 4: (8, 16]
    # Every rank lands in one bucket; interpolation then clamps to the
    # single observed value instead of the 16 upper bucket bound.
    assert h.quantile(0.5) == 10
    assert h.quantile(0.99) == 10
    assert h.quantile(0.999) == 10
    # Uniform fill of one bucket: rank r of n sits at lo + r/n * (hi-lo).
    h2 = Histogram()
    for v in (9, 10, 11, 12, 13, 14, 15, 16):
        h2.observe(v)                    # all 8 in bucket 4, lo=8 hi=16
    assert h2.quantile(0.5) == 12        # 8 + 4/8 * 8
    assert h2.quantile(1.0) == 16
    assert h2.quantile(0.125) == 9       # 8 + 1/8 * 8, also the min clamp


def test_histogram_quantile_p999_two_buckets():
    h = Histogram()
    for _ in range(999):
        h.observe(100)                   # bucket 7: (64, 128]
    h.observe(5000)                      # bucket 13: (4096, 8192]
    # Rank 500 interpolates to 96 inside (64, 128], clamps up to min=100.
    assert h.quantile(0.5) == 100
    # Ranks 990/999 sit near the top of the fast bucket: 64 + r/999 * 64.
    assert h.quantile(0.99) == 127
    assert h.quantile(0.999) == 128
    assert h.quantile(1.0) == 5000       # rank 1000 interpolates, clamps to max
    d = h.as_dict()
    assert d["p999"] == 128 and d["p99"] == 127


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.observe(4)
    b.observe(100)
    b.observe(2)
    a.merge(b)
    assert a.count == 3
    assert (a.min, a.max) == (2, 100)
    assert Histogram().merge(a).count == 3


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
def test_registry_counters_gauges_histograms():
    clock = [0]
    reg = MetricsRegistry(lambda: clock[0], bucket_ns=100)
    reg.inc("msgs", node=0)
    reg.inc("msgs", node=1, n=4)
    clock[0] = 250
    reg.inc("msgs", node=0)
    reg.set_gauge("depth", node=1, value=7)
    reg.observe("lat", node=0, value=16)
    assert reg.counter_total("msgs") == 6
    assert reg.histogram("lat").count == 1
    d = reg.as_dict()
    assert d["counters"]["msgs"]["total"] == 6
    assert d["counters"]["msgs"]["by_node"] == {"0": 2, "1": 4}
    assert d["gauges"]["depth"] == {"1": 7}
    # bucket 0 got the first 5 increments, bucket 200 the later one.
    assert d["series"]["msgs"] == {"0": 5, "200": 1}
    compact = reg.compact()
    assert compact["msgs"] == 6
    assert compact["lat"]["count"] == 1


def test_registry_rejects_bad_bucket():
    with pytest.raises(ValueError):
        MetricsRegistry(lambda: 0, bucket_ns=0)


# ---------------------------------------------------------------------------
# SpanRecorder
# ---------------------------------------------------------------------------
def test_spans_open_close_parenting():
    clock = [10]
    rec = SpanRecorder(lambda: clock[0])
    root = rec.open("acquire", node=0, gid=5)
    clock[0] = 20
    hop = rec.open("hop", node=1, parent=root)
    clock[0] = 35
    rec.close(hop)
    rec.close(root)
    assert rec.spans[root].duration_ns == 25
    assert rec.root_of(hop) == root
    assert rec.depth_of(hop) == 1
    assert rec.ancestry(hop) == ["acquire", "hop"]
    # Closing twice (or a nonexistent id) is a no-op.
    assert rec.close(hop) is None
    assert rec.close(999) is None
    dicts = rec.as_dicts()
    assert [d["name"] for d in dicts] == ["acquire", "hop"]
    assert dicts[0]["attrs"] == {"gid": 5}


def test_spans_cap_drops_and_sentinel_is_inert():
    rec = SpanRecorder(lambda: 0, max_spans=1)
    first = rec.open("a", node=0)
    assert first == 1
    assert rec.open("b", node=0) == 0
    assert rec.dropped == 1
    # The 0 sentinel never resolves to a span anywhere.
    assert rec.close(0) is None
    assert rec.root_of(0) == 0
    assert rec.ancestry(0) == []


def test_chrome_trace_export_and_validation():
    clock = [1000]
    rec = SpanRecorder(lambda: clock[0])
    root = rec.open("dsm.lock.acquire", node=0)
    clock[0] = 3000
    rec.instant("dsm.note", node=1, parent=root)
    clock[0] = 5000
    rec.close(root)
    doc = rec.to_chrome_trace()
    assert validate_chrome_trace(doc) == []
    phases = [e["ph"] for e in doc["traceEvents"]]
    assert phases == ["b", "e", "n"]
    b = doc["traceEvents"][0]
    assert b["ts"] == 1.0 and b["id"] == root and b["tid"] == 0
    # All events of the tree share the root id (Perfetto nesting key).
    assert {e["id"] for e in doc["traceEvents"]} == {root}


def test_trace_validation_catches_malformed_docs():
    assert validate_chrome_trace([]) == ["document is not a JSON object"]
    assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]
    bad = {"traceEvents": [
        {"name": "x", "ph": "e", "ts": 1, "pid": 0, "tid": 0, "id": 7},
        {"name": "y", "ph": "b", "ts": 1, "pid": 0, "tid": 0, "id": 8},
        {"name": "z", "ph": "?", "ts": "NaN", "pid": 0},
    ]}
    errors = validate_chrome_trace(bad)
    assert any("no matching 'b'" in e for e in errors)
    assert any("unclosed async span" in e for e in errors)
    assert any("unknown phase" in e for e in errors)
    assert any("missing required key" in e for e in errors)
    assert any("ts is not a number" in e for e in errors)


def test_collapsed_stacks_use_self_time():
    clock = [0]
    rec = SpanRecorder(lambda: clock[0])
    root = rec.open("a", node=0)
    child = rec.open("b", node=1, parent=root)
    clock[0] = 30
    rec.close(child)
    clock[0] = 100
    rec.close(root)
    lines = dict(line.rsplit(" ", 1)
                 for line in rec.to_collapsed().splitlines())
    assert lines == {"a;b@n1": "30", "a@n0": "70"}


# ---------------------------------------------------------------------------
# StallProfiler
# ---------------------------------------------------------------------------
def test_profiler_first_blocker_wins_and_report():
    clock = [0]
    prof = StallProfiler(lambda: clock[0])
    site = ("W", "run", 9, 7)
    prof.open_stall(1, "lock", site, "Counter@0x3")
    # Re-executed access check: same tid blocks "again" — ignored.
    clock[0] = 50
    prof.open_stall(1, "fetch", None, "Other@0x4")
    clock[0] = 200
    assert prof.close_stall(1) == 200
    assert prof.close_stall(1) == 0      # already closed
    prof.open_stall(2, "fetch", None, "Other@0x4")
    clock[0] = 260
    prof.close_all()
    assert prof.total_stall_ns == 260
    assert prof.by_kind() == {
        "lock": {"stall_ns": 200, "stalls": 1},
        "fetch": {"stall_ns": 60, "stalls": 1},
    }
    rep = prof.report(top_n=5)
    assert rep["hot_units"][0]["unit"] == "Counter@0x3"
    assert rep["hot_sites"][0]["site"] == "W.run:7(pc=9)"
    assert rep["hot_sites"][1]["site"] == "<unknown>"
    assert "total stall time" in prof.format()


def test_site_label():
    assert site_label(None) == "<unknown>"
    assert site_label(("A", "m", 3, 12)) == "A.m:12(pc=3)"


# ---------------------------------------------------------------------------
# Config knobs + wiring
# ---------------------------------------------------------------------------
def test_obs_knobs_off_attaches_nothing():
    rt = _runtime(SYNC_COUNTER_SRC)
    assert rt.obs is None
    report = rt.run()
    assert report.result == 16
    assert report.obs is None


def test_obs_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=2, obs_metrics=True,
                      obs_metrics_bucket_ns=0).validate()
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=2, obs_spans=True,
                      obs_max_spans=0).validate()
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=2, obs_profile=True, obs_top_n=0).validate()
    # The bounds only apply when the subsystem is actually on.
    RuntimeConfig(num_nodes=2, obs_max_spans=0).validate()


def test_obs_manager_attaches_per_worker_agents():
    rt = _runtime(SYNC_COUNTER_SRC, obs_metrics=True, obs_spans=True,
                  obs_profile=True)
    assert isinstance(rt.obs, ObsManager)
    assert set(rt.obs.agents) == {0, 1, 2}
    for w in rt.workers:
        assert w.dsm.obs is rt.obs.agents[w.node_id]
        assert w.transport.obs_on_deliver is not None


# ---------------------------------------------------------------------------
# Passivity: knobs off = byte-identical; metrics/profile = traffic-neutral
# ---------------------------------------------------------------------------
def test_obs_knobs_off_is_byte_identical():
    base = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000).run()
    off = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000,
                   obs_metrics=False, obs_spans=False,
                   obs_profile=False).run()
    assert off.result == base.result
    assert off.net.messages == base.net.messages
    assert off.net.bytes == base.net.bytes
    assert off.simulated_ns == base.simulated_ns


def test_metrics_and_profile_are_traffic_neutral():
    base = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000).run()
    on = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000,
                  obs_metrics=True, obs_profile=True).run()
    assert on.result == base.result
    assert on.net.messages == base.net.messages
    assert on.net.bytes == base.net.bytes
    assert on.simulated_ns == base.simulated_ns
    assert on.obs is not None
    assert on.obs["metrics"]["counters"]["dsm.token.sent"]["total"] > 0
    assert on.obs["profile"]["total_stall_ns"] > 0


def test_spans_bill_their_piggyback_bytes():
    base = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000).run()
    on = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000,
                  obs_spans=True).run()
    assert on.result == base.result
    # Same protocol transitions, strictly more wire bytes (span ids).
    assert on.net.messages == base.net.messages
    assert on.net.bytes > base.net.bytes
    assert on.obs["spans"]["count"] > 0
    assert on.obs["spans"]["dropped"] == 0


# ---------------------------------------------------------------------------
# End-to-end telemetry on the benchmark apps
# ---------------------------------------------------------------------------
def test_tsp_hot_unit_ranking_and_causal_lock_trees():
    # Same configuration `repro profile tsp` runs with.
    rt = _app_runtime("tsp", scheduler="least-loaded", obs_metrics=True,
                      obs_spans=True, obs_profile=True)
    report = rt.run()
    obs = rt.obs
    # Stall attribution: the shared tour bound is among the hottest units.
    hot = [e["unit"] for e in obs.profiler.report(10)["hot_units"]]
    assert any(u.startswith("javasplit.MinTour@") for u in hot[:3]), hot
    sites = obs.profiler.report(10)["hot_sites"]
    assert sites and sites[0]["class"] is not None   # attribution resolved
    # Causal trees: every forwarding hop chains up to a lock root.
    rec = obs.spans
    hops = [s for s in rec.spans.values() if s.name == "dsm.lock.hop"]
    assert hops, "3-node tsp must forward some lock request"
    for hop in hops:
        root = rec.spans[rec.root_of(hop.span_id)]
        assert root.name in ("dsm.lock.acquire", "dsm.lock.wait")
    # Token grants parent back into the same trees.
    tokens = [s for s in rec.spans.values() if s.name == "dsm.token"]
    assert any(rec.depth_of(t.span_id) > 0 for t in tokens)
    # Exported trace is Perfetto-valid and hop counts reached metrics.
    assert validate_chrome_trace(rec.to_chrome_trace()) == []
    assert obs.metrics.histogram("dsm.lock.hops").count > 0
    assert report.obs["profile"]["hot_units"]


def test_fetch_latency_histogram_without_spans():
    rt = _app_runtime("series", obs_metrics=True)
    rt.run()
    hist = rt.obs.metrics.histogram("dsm.fetch.latency_ns")
    assert hist.count > 0
    assert hist.min > 0                 # a remote fetch is never free
    assert rt.obs.metrics.histogram("dsm.lock.wait_ns").count > 0


def test_speedscope_export_from_real_run():
    rt = _app_runtime("series", obs_spans=True)
    rt.run()
    collapsed = rt.obs.spans.to_collapsed()
    assert collapsed
    for line in collapsed.splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert stack


def test_ft_recovery_becomes_span_tree():
    from repro.check.faults import FaultInjector, FaultPlan
    from repro.sim.engine import NS_PER_MS

    rt = _app_runtime("series", obs_metrics=True, obs_spans=True,
                      ft_enabled=True, reliable_transport=True)
    plan = FaultPlan(seed=0)
    plan.detach_node, plan.detach_at_ns = 2, 5 * NS_PER_MS
    FaultInjector.attach(rt, plan)
    rt.run()
    rec = rt.obs.spans
    roots = [s for s in rec.spans.values() if s.name == "ft.recovery"]
    assert len(roots) == 1
    root = roots[0]
    assert root.attrs["dead"] == 2
    # Zero when the token drain settles instantly; never negative.
    assert root.duration_ns >= 0
    phases = [s for s in rec.spans.values()
              if s.parent_id == root.span_id]
    assert {s.name for s in phases} >= {
        "ft.units_adopted", "ft.tokens_reissued", "ft.threads_respawned"}
    assert rt.obs.metrics.counter_total("ft.recoveries") == 1


def test_check_sweep_obs_under_kill():
    rep = run_check(app="series", seeds=1, kill="2@5ms", obs=True)
    assert rep.ok


# ---------------------------------------------------------------------------
# Composition: all telemetry on under the consistency oracle
# ---------------------------------------------------------------------------
def test_check_sweep_with_obs_on():
    rep = run_check(app="series", seeds=3, obs=True)
    assert rep.ok
    assert "obs=on" in rep.summary()


def test_check_sweep_obs_with_locality_and_race():
    rep = run_check(app="tsp", seeds=2, obs=True, locality="all", race=True)
    assert rep.ok
