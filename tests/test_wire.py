"""Wire-format codec tests: exhaustive round-trips over every protocol
message type, property-based payload fuzzing, frame-size limits, and
hostile-input rejection (truncation, corruption, bad versions)."""

import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.net.message import (ALL_MESSAGE_TYPES, M_DIFF, M_FT_REPL,
                               M_LOC_AGG, M_LOCK_REQ, M_RACE_SYNC, M_TOKEN,
                               OBS_SPAN_KEY, Message)
from repro.net.wire import (MAX_FRAME_BYTES, FrameDecoder, WireError,
                            decode_frame, encode_frame, frame_with_prefix,
                            peek_msg_id, peek_route)


def roundtrip(msg: Message) -> Message:
    decoded = decode_frame(encode_frame(msg))
    assert decoded.msg_type == msg.msg_type
    assert decoded.src == msg.src
    assert decoded.dst == msg.dst
    assert decoded.msg_id == msg.msg_id
    assert decoded.size_bytes == msg.size_bytes
    assert decoded.payload == msg.payload
    return decoded


# ---------------------------------------------------------------------------
# Representative payloads per message type.  Shapes mirror what the
# protocol actually sends (see dsm/protocol.py, ft/, locality/, race/):
# flattened lock tokens, (key, bytes, region) diff entries, nested
# version maps, replication unit dicts, aggregate sub-frame lists.
# ---------------------------------------------------------------------------
_PAYLOADS = {
    "dsm.fetch_req": {"gid": 17, "region": None, "__seq__": 0},
    "dsm.fetch_reply": {"gid": 17, "data": b"\x00\x01obj", "version": 3,
                        "applied": {1: 2, 0: 1}, "__seq__": 1},
    "dsm.diff": {"entries": [(17, b"diffbytes", None), ((18, 0), b"r", 0)],
                 "ack_id": 5, "writer": 2, "interval": 7, "__seq__": 2},
    "dsm.diff_ack": {"ack_id": 5, "__seq__": 0},
    "dsm.lock_req": {"gid": 3, "node": 1, "thread_id": 4, "priority": 5,
                     "seq": 9, "restore_count": 0, "__seq__": 3},
    "dsm.lock_fwd": {"gid": 3, "queue_wire": [(1, 4, 5, 9, 0, None)],
                     "__seq__": 4},
    "dsm.token": {"gid": 3, "queue_wire": [(1, 4, 5, 9, 0, None)],
                  "waitq_wire": [], "seen": {0: {3: 1}}, "__seq__": 5},
    "dsm.owner_update": {"gid": 3, "owner": 2, "__seq__": 6},
    "dsm.spawn": {"gid": 21, "class_name": "Worker", "priority": 5,
                  "__seq__": 7},
    "dsm.console": {"text": "tour=1234", "__seq__": 8},
    "transport.ack": {"next": 12},
    "ft.ping": {"beat": 40, "__seq__": 9, "__epoch__": 0},
    "ft.suspect": {"peer": 2, "__seq__": 10},
    "ft.repl": {"origin": 1, "units": [
        {"gid": 17, "region": None, "version": 3, "data": b"unit",
         "cls": "Worker"}], "__seq__": 11},
    "ft.notices": {"notices": [(17, 3), ((18, 0), 1)], "__seq__": 12},
    "ft.rediff": {"entries": [(17, b"diff", None)], "ack_id": 6,
                  "__seq__": 13},
    "ft.rediff_ack": {"ack_id": 6, "__seq__": 14},
    "loc.home_update": {"gid": 17, "home": 2, "epoch": 1, "__seq__": 15},
    "loc.fwd_diff": {"gid": 17, "fwd_id": 8, "entries": [(17, b"d", None)],
                     "requester": 1, "__seq__": 16},
    "loc.fwd_diff_ack": {"fwd_id": 8, "versions": [(17, 4)], "__seq__": 17},
    "loc.bulk_fetch": {"gids": [17, 18, 19], "__seq__": 18},
    "loc.bulk_reply": {"units": [(17, b"u", None, 3)], "__seq__": 19},
    "loc.agg": {"frames": [("dsm.diff", {"entries": [], "ack_id": 1}, 44),
                           ("dsm.diff_ack", {"ack_id": 2}, 40)],
                "__seq__": 20},
    "pol.push": {"gid": 17, "class_name": "Worker", "version": 4,
                 "data": b"unit", "__seq__": 21},
    "pol.bcast": {"gid": 17, "class_name": "Worker", "version": 4,
                  "data": b"unit", "__seq__": 22},
    "race.sync": {"race_ev": [(1, 4, (17, None), 0, 2, 100, 7)],
                  "__seq__": 23},
}


def test_every_message_type_has_a_payload_case():
    """New protocol types must be added to both the registry and this
    suite — a type on the wire without round-trip coverage is a bug."""
    assert set(_PAYLOADS) == set(ALL_MESSAGE_TYPES)


@pytest.mark.parametrize("msg_type", ALL_MESSAGE_TYPES)
def test_roundtrip_every_message_type(msg_type):
    msg = Message(msg_type, src=1, dst=2, payload=dict(_PAYLOADS[msg_type]))
    roundtrip(msg)


@pytest.mark.parametrize("msg_type", [M_DIFF, M_TOKEN, M_LOCK_REQ,
                                      M_RACE_SYNC, M_FT_REPL, M_LOC_AGG])
def test_roundtrip_with_piggyback_keys(msg_type):
    """The cross-subsystem piggyback keys (telemetry span ids, race
    vector clocks, epoch stamps) must survive the wire verbatim."""
    payload = dict(_PAYLOADS[msg_type])
    payload[OBS_SPAN_KEY] = 9_001
    payload["race"] = (3, {0: 5, 2: 9})
    payload["__epoch__"] = 2
    msg = Message(msg_type, src=0, dst=2, payload=payload)
    decoded = roundtrip(msg)
    assert decoded.payload[OBS_SPAN_KEY] == 9_001
    assert decoded.payload["race"] == (3, {0: 5, 2: 9})


def test_roundtrip_preserves_container_kinds_and_dict_order():
    msg = Message("dsm.diff", 0, 1, {
        "tuple": (1, 2), "list": [1, 2], "set": {1, 2},
        "frozen": frozenset({3}), "z": 1, "a": 2,
    })
    decoded = roundtrip(msg)
    assert type(decoded.payload["tuple"]) is tuple
    assert type(decoded.payload["list"]) is list
    assert type(decoded.payload["set"]) is set
    assert type(decoded.payload["frozen"]) is frozenset
    # The protocol iterates payload dicts; insertion order is semantics.
    assert list(decoded.payload) == list(msg.payload)


def test_roundtrip_int_extremes_and_bignums():
    msg = Message("dsm.console", 0, 1, {
        "i64min": -(1 << 63), "i64max": (1 << 63) - 1,
        "big": 1 << 200, "negbig": -(1 << 200), "zero": 0,
    })
    roundtrip(msg)


def test_peek_route_and_msg_id_without_decoding():
    msg = Message("dsm.fetch_req", 3, 7, {"gid": 1})
    frame = encode_frame(msg)
    assert peek_route(frame) == (3, 7)
    assert peek_msg_id(frame) == msg.msg_id
    # Negative node ids (the master's control-plane id) must survive.
    ctrl = Message("proc.hello", -1, 2, {}, size_bytes=1, msg_id=0)
    assert peek_route(encode_frame(ctrl)) == (-1, 2)


# ---------------------------------------------------------------------------
# Property-based payload fuzzing
# ---------------------------------------------------------------------------
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 80), max_value=1 << 80),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=64),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                      st.text(max_size=10),
                      st.tuples(st.integers(min_value=0, max_value=99),
                                st.integers(min_value=0, max_value=99))),
            children, max_size=4),
    ),
    max_leaves=20,
)


@given(payload=st.dictionaries(st.text(max_size=12), _values, max_size=6),
       msg_type=st.sampled_from(ALL_MESSAGE_TYPES),
       src=st.integers(min_value=-1, max_value=63),
       dst=st.integers(min_value=-1, max_value=63))
def test_roundtrip_fuzzed_payloads(payload, msg_type, src, dst):
    msg = Message(msg_type, src, dst, payload, size_bytes=1)
    decoded = decode_frame(encode_frame(msg))
    assert decoded.payload == payload
    assert (decoded.msg_type, decoded.src, decoded.dst) == \
        (msg_type, src, dst)


@given(data=st.binary(max_size=300))
def test_arbitrary_bytes_never_crash_the_decoder(data):
    """Hostile input either decodes or raises WireError — nothing else."""
    try:
        decode_frame(data)
    except WireError:
        pass


@given(cut=st.integers(min_value=0, max_value=200))
def test_truncated_frames_rejected(cut):
    msg = Message("dsm.diff", 1, 2, dict(_PAYLOADS["dsm.diff"]))
    frame = encode_frame(msg)
    if cut >= len(frame):
        return
    with pytest.raises(WireError):
        decode_frame(frame[:cut])


def test_trailing_garbage_rejected():
    frame = encode_frame(Message("dsm.diff_ack", 1, 2, {"ack_id": 1}))
    with pytest.raises(WireError, match="trailing"):
        decode_frame(frame + b"\x00")


def test_bad_magic_and_version_rejected():
    frame = bytearray(encode_frame(Message("dsm.diff_ack", 1, 2, {})))
    bad_magic = b"XX" + bytes(frame[2:])
    with pytest.raises(WireError, match="magic"):
        decode_frame(bad_magic)
    bad_version = bytes(frame[:2]) + b"\x63" + bytes(frame[3:])
    with pytest.raises(WireError, match="version"):
        decode_frame(bad_version)


def test_unencodable_payload_raises():
    class Opaque:
        pass

    with pytest.raises(WireError, match="cannot encode"):
        encode_frame(Message("dsm.diff", 0, 1, {"x": Opaque()},
                             size_bytes=1))


# ---------------------------------------------------------------------------
# Size limits
# ---------------------------------------------------------------------------
def test_max_size_frame_roundtrips():
    """A frame just under the cap encodes, decodes, and reassembles."""
    blob = b"\xab" * (MAX_FRAME_BYTES - 4096)
    msg = Message("dsm.fetch_reply", 0, 1, {"data": blob}, size_bytes=1)
    frame = encode_frame(msg)
    assert len(frame) <= MAX_FRAME_BYTES
    assert decode_frame(frame).payload["data"] == blob
    decoder = FrameDecoder()
    frames = list(decoder.feed(frame_with_prefix(frame)))
    assert len(frames) == 1 and frames[0] == frame


def test_oversize_frame_rejected_at_encode():
    blob = b"\xab" * (MAX_FRAME_BYTES + 1)
    with pytest.raises(WireError, match="too large"):
        encode_frame(Message("dsm.fetch_reply", 0, 1, {"data": blob},
                             size_bytes=1))


def test_oversize_length_prefix_rejected_by_decoder():
    decoder = FrameDecoder()
    poison = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(WireError, match="exceeds cap"):
        list(decoder.feed(poison))


# ---------------------------------------------------------------------------
# Stream reassembly
# ---------------------------------------------------------------------------
@given(chunk=st.integers(min_value=1, max_value=64))
def test_decoder_reassembles_any_chunking(chunk):
    msgs = [Message(t, 0, 1, dict(_PAYLOADS[t]))
            for t in ("dsm.fetch_req", "dsm.diff", "ft.repl")]
    stream = b"".join(frame_with_prefix(encode_frame(m)) for m in msgs)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[i:i + chunk]))
    assert decoder.pending_bytes == 0
    assert [decode_frame(f).msg_type for f in out] == \
        [m.msg_type for m in msgs]
