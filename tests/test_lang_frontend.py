"""Unit tests for the MiniJava lexer and parser (front-end only)."""

import pytest

from repro.lang import LexError, ParseError, parse, tokenize
from repro.lang.ast_nodes import (
    ArrayIndex, Assign, Binary, Block, Call, Cast, ClassDecl, FieldAccess,
    For, If, InstanceOf, IntLit, MethodDecl, New, NewArray, Return, StrLit,
    SuperCall, SyncBlock, Unary, VarDecl, VarRef, While,
)


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]  # drop EOF


def test_tokenize_idents_and_keywords():
    assert kinds("class Foo extends Bar") == [
        ("keyword", "class"), ("ident", "Foo"),
        ("keyword", "extends"), ("ident", "Bar"),
    ]


def test_tokenize_numbers():
    assert kinds("1 42 3.14 1e3 2.5e-2") == [
        ("int", "1"), ("int", "42"), ("double", "3.14"),
        ("double", "1e3"), ("double", "2.5e-2"),
    ]


def test_tokenize_string_escapes():
    toks = tokenize(r'"a\nb\t\"q\\"')
    assert toks[0].kind == "str"
    assert toks[0].text == 'a\nb\t"q\\'


def test_tokenize_char_literal_is_int():
    toks = tokenize("'x'")
    assert toks[0].kind == "int"
    assert toks[0].text == str(ord("x"))


def test_tokenize_operators_longest_match():
    assert [t.text for t in tokenize("a >>> b >> c >= d > e")[:-1]] == [
        "a", ">>>", "b", ">>", "c", ">=", "d", ">", "e",
    ]


def test_tokenize_comments_stripped():
    assert kinds("a // line\n /* block\n */ b") == [
        ("ident", "a"), ("ident", "b"),
    ]


def test_tokenize_line_numbers():
    toks = tokenize("a\nbb\n  c")
    assert [(t.text, t.line) for t in toks[:-1]] == [
        ("a", 1), ("bb", 2), ("c", 3),
    ]


def test_tokenize_errors():
    with pytest.raises(LexError):
        tokenize('"unterminated')
    with pytest.raises(LexError):
        tokenize("/* unterminated")
    with pytest.raises(LexError):
        tokenize("a $ b")
    with pytest.raises(LexError):
        tokenize(r'"bad \q escape"')


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def parse_one(src):
    prog = parse(src)
    assert len(prog.classes) == 1
    return prog.classes[0]


def first_stmt(src_body):
    cls = parse_one(f"class C {{ void m() {{ {src_body} }} }}")
    return cls.methods[0].body.stmts[0]


def test_parse_class_structure():
    cls = parse_one("""
    class Point extends Shape {
        int x;
        static double scale = 2.0;
        volatile int flag;
        Point(int x) { this.x = x; }
        synchronized int get() { return x; }
        static void reset() { }
    }
    """)
    assert cls.name == "Point" and cls.super_name == "Shape"
    assert [f.name for f in cls.fields] == ["x", "scale", "flag"]
    assert cls.fields[1].is_static and cls.fields[1].init == 2.0
    assert cls.fields[2].volatile
    ctor, get, reset = cls.methods
    assert ctor.is_constructor and ctor.name == "<init>"
    assert get.is_synchronized and not get.is_static
    assert reset.is_static


def test_parse_precedence():
    stmt = first_stmt("int x = 1 + 2 * 3;")
    expr = stmt.init
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.right, Binary) and expr.right.op == "*"


def test_parse_parentheses_override():
    stmt = first_stmt("int x = (1 + 2) * 3;")
    expr = stmt.init
    assert expr.op == "*"
    assert isinstance(expr.left, Binary) and expr.left.op == "+"


def test_parse_logical_precedence():
    stmt = first_stmt("boolean b = true || false && true;")
    expr = stmt.init
    assert expr.op == "||"
    assert isinstance(expr.right, Binary) and expr.right.op == "&&"


def test_parse_compound_assign_desugars():
    stmt = first_stmt("x += 2;")
    expr = stmt.expr
    assert isinstance(expr, Assign)
    assert isinstance(expr.value, Binary) and expr.value.op == "+"


def test_parse_increment_desugars():
    stmt = first_stmt("x++;")
    expr = stmt.expr
    assert isinstance(expr, Assign)
    assert isinstance(expr.value, Binary) and expr.value.op == "+"
    assert isinstance(expr.value.right, IntLit)


def test_parse_array_types_and_new():
    stmt = first_stmt("int[][] g = new int[5][];")
    assert isinstance(stmt, VarDecl) and stmt.type == "int[][]"
    assert isinstance(stmt.init, NewArray)
    assert stmt.init.elem_type == "int[]"


def test_parse_field_chain_and_index():
    stmt = first_stmt("int v = a.b.c[3];")
    expr = stmt.init
    assert isinstance(expr, ArrayIndex)
    assert isinstance(expr.arr, FieldAccess) and expr.arr.name == "c"
    assert isinstance(expr.arr.obj, FieldAccess) and expr.arr.obj.name == "b"


def test_parse_method_call_chain():
    stmt = first_stmt("int v = obj.get().length();")
    expr = stmt.expr if not hasattr(stmt, "init") else stmt.init
    assert isinstance(expr, Call) and expr.name == "length"
    assert isinstance(expr.obj, Call) and expr.obj.name == "get"


def test_parse_cast_primitive():
    stmt = first_stmt("int v = (int) 3.5;")
    assert isinstance(stmt.init, Cast) and stmt.init.target_type == "int"


def test_parse_cast_class():
    stmt = first_stmt("Dog d = (Dog) animal;")
    assert isinstance(stmt.init, Cast) and stmt.init.target_type == "Dog"


def test_parse_parenthesized_expr_not_cast():
    stmt = first_stmt("int v = (a) + b;")
    assert isinstance(stmt.init, Binary) and stmt.init.op == "+"


def test_parse_instanceof():
    stmt = first_stmt("boolean b = x instanceof Dog;")
    assert isinstance(stmt.init, InstanceOf) and stmt.init.klass == "Dog"


def test_parse_control_flow_shapes():
    cls = parse_one("""
    class C {
        void m() {
            if (a) { } else { }
            while (b) { }
            for (int i = 0; i < 3; i++) { break; }
            synchronized (lock) { }
            return;
        }
    }
    """)
    stmts = cls.methods[0].body.stmts
    assert isinstance(stmts[0], If) and stmts[0].otherwise is not None
    assert isinstance(stmts[1], While)
    assert isinstance(stmts[2], For)
    assert isinstance(stmts[3], SyncBlock)
    assert isinstance(stmts[4], Return)


def test_parse_for_with_empty_clauses():
    stmt = first_stmt("for (;;) { break; }")
    assert isinstance(stmt, For)
    assert stmt.init is None and stmt.cond is None and stmt.update is None


def test_parse_super_call():
    cls = parse_one("class C { C(int x) { super(x); } }")
    body = cls.methods[0].body.stmts
    assert isinstance(body[0], SuperCall) and len(body[0].args) == 1


def test_parse_native_method_has_no_body():
    cls = parse_one("class C { native int magic(); }")
    m = cls.methods[0]
    assert m.is_native and m.body is None


def test_parse_dangling_else_binds_inner():
    stmt = first_stmt("if (a) if (b) { x = 1; } else { x = 2; }")
    assert isinstance(stmt, If)
    assert stmt.otherwise is None
    assert isinstance(stmt.then, If)
    assert stmt.then.otherwise is not None


def test_parse_string_used_as_value_rejected():
    with pytest.raises(ParseError):
        parse("class C { void m() { int x = String; } }")


def test_parse_errors_report_line():
    with pytest.raises(ParseError, match="line 3"):
        parse("class C {\n  void m() {\n    return 1 +;\n  }\n}")


def test_parse_invalid_assignment_target():
    with pytest.raises(ParseError):
        parse("class C { void m() { 1 = 2; } }")


def test_parse_unary_constant_folding():
    stmt = first_stmt("int x = -5;")
    assert isinstance(stmt.init, IntLit) and stmt.init.value == -5
    stmt = first_stmt("double x = -2.5;")
    assert stmt.init.value == -2.5


def test_parse_not_and_bitnot():
    stmt = first_stmt("boolean b = !x;")
    assert isinstance(stmt.init, Unary) and stmt.init.op == "!"
    stmt = first_stmt("int v = ~x;")
    assert isinstance(stmt.init, Unary) and stmt.init.op == "~"
