"""Adaptive coherence policies: classifier patterns, per-policy
end-to-end runs under the oracle + monitor, token-borne migratory
grants, push/broadcast install guards, tracer event kinds, and the
profiler edge cases around window eviction."""

import pytest

from repro.check import InvariantMonitor, SingleCopyOracle, run_check
from repro.check.runner import app_source, parse_policy
from repro.dsm.objectstate import ObjState
from repro.lang import compile_source
from repro.locality import AccessProfiler
from repro.locality.profiler import (MIGRATORY, MULTI_WRITER,
                                     PRODUCER_CONSUMER, READ_MOSTLY)
from repro.net.message import M_POL_PUSH, Message
from repro.policy import POLICY_MIGRATORY, POLICY_UPDATE
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig
from repro.runtime.tracing import DsmTracer

# Producer on one node, consumer on another, home on a third: the home
# sees single-writer diffs interleaved with re-fetches from a distinct
# reader — the write-update pattern.  Compute pacing keeps the lock
# ping-ponging instead of one thread draining its loop in one hold.
# Every source starts with a Pad thread: round-robin places the first
# spawned thread on node 0 (the home of everything Main allocates), so
# the pad soaks up that slot and the real workers land remote.
PRODUCER_CONSUMER_SRC = """
class Box { int v; }
class Pad extends Thread {
    void run() {}
}
class Producer extends Thread {
    Box b;
    Producer(Box b) { this.b = b; }
    void run() {
        for (int i = 0; i < 10; i++) {
            synchronized (b) { b.v = b.v + 1; }
            int t = 0;
            for (int j = 0; j < 8000; j++) t = t + j;
        }
    }
}
class Consumer extends Thread {
    Box b;
    int sum;
    Consumer(Box b) { this.b = b; }
    void run() {
        for (int i = 0; i < 10; i++) {
            synchronized (b) { sum = sum + b.v; }
            int t = 0;
            for (int j = 0; j < 8000; j++) t = t + j;
        }
    }
}
class Main {
    static int main() {
        Box b = new Box();
        Pad d = new Pad();
        d.start(); d.join();
        Producer p = new Producer(b);
        Consumer c = new Consumer(b);
        p.start(); c.start();
        p.join(); c.join();
        return b.v;
    }
}
"""

# Two writers on distinct nodes taking turns on one lock-protected
# counter: ownership wants to travel with the token.
PING_PONG_SRC = """
class Counter { int v; }
class Pad extends Thread {
    void run() {}
}
class W extends Thread {
    Counter c;
    W(Counter c) { this.c = c; }
    void run() {
        for (int i = 0; i < 8; i++) {
            synchronized (c) { c.v = c.v + 1; }
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        Pad d = new Pad();
        d.start(); d.join();
        W a = new W(c);
        W b = new W(c);
        a.start(); b.start();
        a.join(); b.join();
        return c.v;
    }
}
"""

# A table read by every worker on every iteration and written twice by
# the master mid-run: the read-mostly broadcast pattern.  The paced
# readers re-fetch after each invalidation, which is exactly the fetch
# traffic a version-stamped broadcast short-circuits.
READ_MOSTLY_SRC = """
class Table { int a; int b; }
class Pad extends Thread {
    void run() {}
}
class Reader extends Thread {
    Table t;
    int sum;
    Reader(Table t) { this.t = t; }
    void run() {
        for (int i = 0; i < 24; i++) {
            synchronized (t) { sum = sum + t.a + t.b; }
            int k = 0;
            for (int j = 0; j < 12000; j++) k = k + j;
        }
    }
}
class Main {
    static int main() {
        Table t = new Table();
        t.a = 1;
        t.b = 2;
        Pad d = new Pad();
        d.start(); d.join();
        Reader r1 = new Reader(t);
        Reader r2 = new Reader(t);
        r1.start(); r2.start();
        int k = 0;
        for (int j = 0; j < 200000; j++) k = k + j;
        synchronized (t) { t.a = 5; }
        for (int j = 0; j < 200000; j++) k = k + j;
        synchronized (t) { t.b = 7; }
        r1.join(); r2.join();
        return t.a + t.b;
    }
}
"""


def _runtime(src, nodes=3, **cfg):
    classfiles = compile_source(src)
    rewritten = rewrite_application(classfiles)
    cfg.setdefault("scheduler", "round-robin")  # spread threads over nodes
    return JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=nodes, **cfg))


def _checked_run(rt):
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    report = rt.run()
    monitor.finalize()
    oracle.finalize()
    assert monitor.ok, monitor.summary()
    assert oracle.ok, oracle.summary()
    return report


# ---------------------------------------------------------------------------
# Knobs and plumbing
# ---------------------------------------------------------------------------
def test_knobs_off_attaches_nothing():
    rt = _runtime(PING_PONG_SRC)
    assert rt.policy is None
    assert all(w.dsm.policy is None for w in rt.workers)
    report = rt.run()
    assert report.result == 16
    assert report.policy is None
    # No policy traffic exists without the subsystem — by construction.
    assert not any(t.startswith("pol.") for t in report.net.by_type)


def test_parse_policy_specs():
    assert parse_policy("") == {
        "policy_update": False,
        "policy_migratory": False,
        "policy_broadcast": False,
    }
    assert all(parse_policy("all").values())
    spec = parse_policy("update, broadcast")
    assert spec["policy_update"] and spec["policy_broadcast"]
    assert not spec["policy_migratory"]
    with pytest.raises(ValueError):
        parse_policy("update,eager")


def test_policy_off_matches_baseline_traffic():
    # All policy_* knobs off: no agent is attached, so the traffic is
    # identical to a config that never mentions the subsystem.
    base = _runtime(PRODUCER_CONSUMER_SRC).run()
    off = _runtime(PRODUCER_CONSUMER_SRC, policy_update=False,
                   policy_migratory=False, policy_broadcast=False).run()
    assert off.result == base.result
    assert off.net.messages == base.net.messages
    assert off.net.bytes == base.net.bytes
    assert off.net.by_type == base.net.by_type


def test_policy_off_matches_baseline_traffic_proc(proc_guard):
    # Same passivity proof on the multiprocess backend: knobs-off runs
    # are byte-identical whether or not the config mentions policy_*.
    base = _runtime(PRODUCER_CONSUMER_SRC, transport_backend="proc").run()
    off = _runtime(PRODUCER_CONSUMER_SRC, transport_backend="proc",
                   policy_update=False, policy_migratory=False,
                   policy_broadcast=False).run()
    assert off.result == base.result
    assert off.net.messages == base.net.messages
    assert off.net.bytes == base.net.bytes
    assert off.net.by_type == base.net.by_type


# ---------------------------------------------------------------------------
# Classifier: the four textbook patterns
# ---------------------------------------------------------------------------
def test_classify_read_mostly():
    prof = AccessProfiler(window=8)
    prof.note_fetch(5, node=1)
    prof.note_fetch(5, node=2)
    prof.note_fetch(5, node=1)
    assert prof.classify(5, threshold=3) == READ_MOSTLY
    # A single write does not break the pattern; a second one does.
    prof.note_diff(5, node=1)
    assert prof.classify(5, threshold=3) == READ_MOSTLY
    prof.note_diff(5, node=2)
    assert prof.classify(5, threshold=3) != READ_MOSTLY


def test_classify_producer_consumer():
    prof = AccessProfiler(window=8)
    prof.note_diff(7, node=1)
    prof.note_fetch(7, node=2)
    prof.note_diff(7, node=1)
    assert prof.classify(7, threshold=3) is None  # below threshold
    prof.note_diff(7, node=1)
    assert prof.classify(7, threshold=3) == PRODUCER_CONSUMER
    # The "consumer" being the writer itself is not producer-consumer.
    prof2 = AccessProfiler(window=8)
    for _ in range(3):
        prof2.note_diff(9, node=1)
        prof2.note_fetch(9, node=1)
    assert prof2.classify(9, threshold=3) is None


def test_classify_migratory_vs_multi_writer():
    prof = AccessProfiler(window=8)
    for node in (1, 2, 1, 2):
        prof.note_diff(3, node=node)
    assert prof.classify(3, threshold=3) == MIGRATORY
    # Readers inside the writer set keep it migratory...
    prof.note_fetch(3, node=1)
    assert prof.classify(3, threshold=3) == MIGRATORY
    # ...an outside reader does not.
    prof.note_fetch(3, node=4)
    assert prof.classify(3, threshold=3) == MULTI_WRITER
    # Back-to-back diffs from one writer break the alternation.
    prof2 = AccessProfiler(window=8)
    for node in (1, 1, 2, 2):
        prof2.note_diff(3, node=node)
    assert prof2.classify(3, threshold=3) == MULTI_WRITER


def test_classify_empty_window():
    prof = AccessProfiler(window=4)
    assert prof.classify(1, threshold=1) is None


# ---------------------------------------------------------------------------
# Profiler edge cases: eviction, reset, interleaved windows
# ---------------------------------------------------------------------------
def test_window_eviction_flips_should_migrate():
    prof = AccessProfiler(window=4)
    for _ in range(3):
        prof.note_diff(7, node=1)
    assert prof.should_migrate(7, writer=1, threshold=3)
    # A second writer pins the unit...
    prof.note_diff(7, node=2)
    assert not prof.should_migrate(7, writer=1, threshold=3)
    assert not prof.should_migrate(7, writer=2, threshold=3)
    # ...until node 1's diffs roll out of the window and node 2 becomes
    # the sole recent writer.
    for _ in range(3):
        prof.note_diff(7, node=2)
    assert prof.should_migrate(7, writer=2, threshold=3)
    assert not prof.should_migrate(7, writer=1, threshold=3)


def test_reset_clears_classification():
    prof = AccessProfiler(window=8)
    for node in (1, 2, 1, 2):
        prof.note_diff(3, node=node)
    assert prof.classify(3, threshold=3) == MIGRATORY
    prof.reset(3)
    assert prof.classify(3, threshold=3) is None
    assert not prof.should_migrate(3, writer=1, threshold=1)
    # History restarts cleanly after the reset.
    prof.note_diff(3, node=4)
    assert prof.should_migrate(3, writer=4, threshold=1)


def test_interleaved_fetch_diff_windows_evolve():
    # Fetches count against the same bounded window as diffs, so a
    # producer-consumer phase drifts into read-mostly as reads push the
    # old writes out.
    prof = AccessProfiler(window=6)
    for _ in range(3):
        prof.note_diff(11, node=1)
        prof.note_fetch(11, node=2)
    assert prof.classify(11, threshold=3) == PRODUCER_CONSUMER
    for node in (2, 3, 2, 3, 2):
        prof.note_fetch(11, node=node)
    assert prof.classify(11, threshold=3) == READ_MOSTLY
    # And fetch eviction works symmetrically: migration is unblocked
    # once interleaved fetches evict the foreign diff.
    prof2 = AccessProfiler(window=3)
    prof2.note_diff(5, node=2)
    prof2.note_diff(5, node=1)
    assert not prof2.should_migrate(5, writer=1, threshold=1)
    prof2.note_fetch(5, node=3)
    prof2.note_fetch(5, node=3)  # evicts node 2's diff
    assert prof2.should_migrate(5, writer=1, threshold=1)


# ---------------------------------------------------------------------------
# Write-update end-to-end, oracle-verified
# ---------------------------------------------------------------------------
def test_update_pushes_cut_fetches():
    base = _runtime(PRODUCER_CONSUMER_SRC).run()
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_update=True)
    report = _checked_run(rt)
    assert report.result == base.result == 10
    pol = report.policy
    assert pol is not None
    assert pol["by_policy"]["update"] >= 1
    assert pol["pushes"] >= 1 and pol["push_installs"] >= 1
    # Every installed push is one saved demand fetch round-trip.
    assert report.total_dsm().fetches < base.total_dsm().fetches


def test_update_push_traffic_is_accounted():
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_update=True)
    report = _checked_run(rt)
    pushes, push_bytes = \
        report.net.subsystem_overhead()["policy"]["push"]
    assert pushes == report.policy["pushes"] >= 1
    assert push_bytes > 0


# ---------------------------------------------------------------------------
# Migratory end-to-end: bootstrap grant + token-borne grants
# ---------------------------------------------------------------------------
def test_migratory_ownership_travels_with_token():
    base = _runtime(PING_PONG_SRC).run()
    rt = _runtime(PING_PONG_SRC, policy_migratory=True)
    report = _checked_run(rt)
    assert report.result == base.result == 16
    pol = report.policy
    assert pol["grants"] >= 2 and pol["grant_installs"] >= 1
    # Once ownership rides the token, the holder writes its own master:
    # the remote diff round-trips disappear.
    assert report.total_dsm().diffs_sent < base.total_dsm().diffs_sent
    assert report.net.messages < base.net.messages
    # The unit's master lives where the (epoch-guarded) registry says.
    gid, (home, _epoch) = next(
        iter(rt.locality.migrations.items()))
    obj = rt.workers[home].dsm.cache.get(gid)
    assert obj is not None and obj.header.state == ObjState.HOME


def test_migratory_token_grant_sizes_token_frame():
    rt = _runtime(PING_PONG_SRC, policy_migratory=True)
    tracer = DsmTracer.attach(rt)
    _checked_run(rt)
    # Token frames that carry a grant are strictly larger than the
    # grantless baseline token frame size.
    token_sizes = set()
    for ev in tracer.events_of_type("dsm.token"):
        token_sizes.add(int(ev.detail.rsplit("(", 1)[1].rstrip("B)")))
    assert len(token_sizes) >= 2, token_sizes


# ---------------------------------------------------------------------------
# Read-mostly broadcast end-to-end, oracle-verified
# ---------------------------------------------------------------------------
def test_broadcast_on_rare_write():
    base = _runtime(READ_MOSTLY_SRC).run()
    rt = _runtime(READ_MOSTLY_SRC, policy_broadcast=True)
    report = _checked_run(rt)
    assert report.result == base.result == 12
    pol = report.policy
    assert pol["promotions"] >= 1
    assert pol["broadcasts"] >= 1
    bcasts, bcast_bytes = \
        report.net.subsystem_overhead()["policy"]["broadcast"]
    assert bcasts == pol["broadcasts"]
    assert bcast_bytes > 0


# ---------------------------------------------------------------------------
# Demotion: the pattern breaks, the policy is dropped at once
# ---------------------------------------------------------------------------
def test_pattern_break_demotes_immediately():
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_update=True,
                  policy_migratory=True)
    rt.run()
    agent = rt.policy.agents[0]
    gid = 0x7000
    # Single writer + distinct reader: promoted to write-update after
    # the hysteresis streak.
    for _ in range(3):
        agent._note_event(gid, "diff", 1)
        agent._note_event(gid, "fetch", 2)
    assert rt.policy.policy_of(gid) == POLICY_UPDATE
    promoted = agent.dsm.stats.pol_promotions
    # A second writer appears: multi-writer maps to no policy, and the
    # demotion is immediate (no hysteresis on the way down).
    agent._note_event(gid, "diff", 2)
    assert rt.policy.policy_of(gid) is None
    assert agent.dsm.stats.pol_demotions >= 1
    # Re-promotion still needs a fresh hysteresis streak.
    assert agent.dsm.stats.pol_promotions == promoted


def test_disabled_policy_is_never_promoted():
    # Update pattern with only the migratory knob on: classification
    # happens, promotion does not.
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_migratory=True)
    rt.run()
    agent = rt.policy.agents[0]
    gid = 0x7100
    for _ in range(4):
        agent._note_event(gid, "diff", 1)
        agent._note_event(gid, "fetch", 2)
    assert rt.policy.policy_of(gid) is None


# ---------------------------------------------------------------------------
# Oracle: pushed installs are actually cross-checked
# ---------------------------------------------------------------------------
def test_oracle_catches_corrupted_push():
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_update=True)
    oracle = SingleCopyOracle.attach(rt)
    rt.run()
    assert oracle.ok
    # Forge a push whose version was never published by any home: the
    # receiving agent installs it (guards only check staleness), and
    # the oracle must flag the unknown version.
    d0, d1 = rt.workers[0].dsm, rt.workers[1].dsm
    gid = next(g for g, obj in sorted(d0.cache.items())
               if g not in d0._regions and obj.header is not None
               and obj.header.state == ObjState.HOME
               and d1.cache.get(g) is not None
               and d1.cache[g].header.state != ObjState.HOME)
    unit = d0.ft_serialize_unit(gid)
    forged = Message(M_POL_PUSH, src=0, dst=1, payload={
        "gid": gid, "class_name": unit["class_name"],
        "version": unit["version"] + 5, "data": unit["data"],
    })
    installs = d1.stats.pol_push_installs
    d1.transport._handlers[M_POL_PUSH](forged)
    assert d1.stats.pol_push_installs == installs + 1
    assert not oracle.ok
    assert any(v.kind == "oracle-version" and "push install" in v.detail
               for v in oracle.violations), oracle.summary()


def test_stale_push_is_skipped_by_install_guards():
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_update=True)
    oracle = SingleCopyOracle.attach(rt)
    rt.run()
    d0, d1 = rt.workers[0].dsm, rt.workers[1].dsm
    gid = next(g for g, obj in sorted(d0.cache.items())
               if g not in d0._regions and obj.header is not None
               and obj.header.state == ObjState.HOME
               and d1.cache.get(g) is not None
               and d1.cache[g].header.state != ObjState.HOME)
    unit = d0.ft_serialize_unit(gid)
    stale = Message(M_POL_PUSH, src=0, dst=1, payload={
        "gid": gid, "class_name": unit["class_name"],
        "version": 0, "data": unit["data"],
    })
    installs = d1.stats.pol_push_installs
    d1.transport._handlers[M_POL_PUSH](stale)
    # Guarded skip: no install, and no oracle check was attempted.
    assert d1.stats.pol_push_installs == installs
    assert oracle.ok, oracle.summary()


# ---------------------------------------------------------------------------
# Tracer: policy event kinds + summary()
# ---------------------------------------------------------------------------
def test_tracer_summary_counts_policy_events():
    rt = _runtime(PING_PONG_SRC, policy_migratory=True)
    tracer = DsmTracer.attach(rt)
    rt.run()
    summary = tracer.summary()
    assert summary.get("policy.classify", 0) >= 1
    assert summary.get("policy.promote", 0) >= 1
    assert summary.get("policy.grant", 0) >= 1
    assert summary.get("policy.grant_install", 0) >= 1


def test_tracer_summary_counts_push_events():
    rt = _runtime(PRODUCER_CONSUMER_SRC, policy_update=True)
    tracer = DsmTracer.attach(rt)
    rt.run()
    assert tracer.summary().get("policy.push", 0) >= 1


def test_tracer_summary_without_policy():
    rt = _runtime(PING_PONG_SRC)
    tracer = DsmTracer.attach(rt)
    rt.run()
    assert not any(k.startswith("policy.")
                   for k in tracer.summary())


# ---------------------------------------------------------------------------
# Seeded sweeps: every policy under oracle + monitor, composed modes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["update", "migratory", "broadcast"])
def test_policy_sweep_on_tsp(policy):
    report = run_check(app="tsp", seeds=3, policy=policy)
    assert report.ok, report.summary()
    assert report.policy == policy


def test_all_policies_sweep_on_series():
    report = run_check(app="series", seeds=3, policy="all")
    assert report.ok, report.summary()


def test_policy_composes_with_kill():
    report = run_check(app="tsp", seeds=3, kill="random", policy="all")
    assert report.ok, report.summary()


def test_policy_composes_with_race_detector():
    report = run_check(app="series", seeds=2, policy="all", race=True)
    assert report.ok, report.summary()


def test_policy_composes_with_locality():
    report = run_check(app="tsp", seeds=2, policy="all", locality="all")
    assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# Recovery: a kill wipes policy state back to plain invalidation
# ---------------------------------------------------------------------------
def test_recovery_wipes_policy_state():
    report = run_check(app="tsp", seeds=4, kill="random",
                       policy="migratory")
    assert report.ok, report.summary()


def test_on_recovery_clears_registry_and_agents():
    rt = _runtime(PING_PONG_SRC, policy_migratory=True)
    rt.run()
    # The run itself may end with the unit demoted (pattern breaks once
    # the workers drain), so seed the registry explicitly: recovery must
    # wipe whatever is promoted at the instant the kill lands.
    rt.policy.set_policy(0x4000, "migratory")
    rt.policy.set_policy(0x4001, "update")
    assert rt.policy.units, "expected promoted units"
    wiped = len(rt.policy.units)
    rt.policy.on_recovery(dead=1)
    assert rt.policy.units == {}
    assert rt.policy.recovery_wipes == 1
    assert rt.policy.units_wiped == wiped
    for agent in rt.policy.agents.values():
        assert len(agent.profiler) == 0
        assert not agent._readers and not agent._streak
