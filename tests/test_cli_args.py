"""CLI flag wiring: the shared parser helpers must give run/trace/
check/bench a consistent backend surface, and the parsed namespace must
translate into the right RuntimeConfig knobs."""

import pytest

from repro.cli import _backend_kwargs, build_parser


@pytest.fixture(scope="module")
def parser():
    return build_parser()


# ---------------------------------------------------------------------------
# Shared backend flags: same spelling, same defaults, everywhere
# ---------------------------------------------------------------------------
BACKEND_COMMANDS = {
    "run": ["run", "prog.mj"],
    "trace": ["trace", "prog.mj"],
    "check": ["check"],
    "bench": ["bench"],
}


@pytest.mark.parametrize("command", sorted(BACKEND_COMMANDS))
def test_backend_flags_default_to_sim(parser, command):
    args = parser.parse_args(BACKEND_COMMANDS[command])
    assert args.backend == "sim"
    assert args.socket_kind == "unix"


@pytest.mark.parametrize("command", sorted(BACKEND_COMMANDS))
def test_backend_flags_accept_proc_tcp(parser, command):
    argv = BACKEND_COMMANDS[command] + ["--backend", "proc",
                                        "--socket", "tcp"]
    args = parser.parse_args(argv)
    assert args.backend == "proc"
    assert args.socket_kind == "tcp"


@pytest.mark.parametrize("command", sorted(BACKEND_COMMANDS))
def test_unknown_backend_rejected(parser, command, capsys):
    with pytest.raises(SystemExit):
        parser.parse_args(BACKEND_COMMANDS[command] + ["--backend", "mpi"])
    assert "invalid choice" in capsys.readouterr().err


def test_backend_kwargs_maps_flags_to_config_knobs(parser):
    args = parser.parse_args(["run", "prog.mj", "--backend", "proc",
                              "--socket", "tcp"])
    assert _backend_kwargs(args) == {"transport_backend": "proc",
                                     "proc_socket_kind": "tcp"}


def test_backend_kwargs_defaults_for_commands_without_the_flags():
    # Commands that never grew backend flags (original, profile, …)
    # still build configs through the same helper: it must degrade to
    # the sim defaults rather than AttributeError.
    class Bare:
        pass

    assert _backend_kwargs(Bare()) == {"transport_backend": "sim",
                                       "proc_socket_kind": "unix"}


# ---------------------------------------------------------------------------
# Shared coherency/locality flags on every cluster-shaped command
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("command", ["run", "trace", "check"])
def test_coherency_and_locality_flags_shared(parser, command):
    argv = BACKEND_COMMANDS[command] + [
        "--region-elems", "8", "--vector-timestamps",
        "--locality", "migration,prefetch"]
    args = parser.parse_args(argv)
    assert args.region_elems == 8
    assert args.vector_timestamps is True
    assert args.locality == "migration,prefetch"


# ---------------------------------------------------------------------------
# check/bench specifics
# ---------------------------------------------------------------------------
def test_check_backend_with_kill_parses(parser):
    args = parser.parse_args(["check", "--app", "series", "--seeds", "5",
                              "--kill", "1@5ms", "--backend", "proc"])
    assert (args.app, args.seeds) == ("series", 5)
    assert args.kill == "1@5ms"
    assert args.backend == "proc"


def test_bench_compare_backends_flag(parser):
    args = parser.parse_args(["bench", "--app", "series",
                              "--compare-backends", "--json"])
    assert args.compare_backends is True
    assert args.apps == ["series"]
    assert args.json is True
    assert parser.parse_args(["bench"]).compare_backends is False


def test_main_returns_exit_code_without_dispatch_surprises(capsys):
    # ``main`` is now a thin parse-then-dispatch wrapper; a bad flag
    # must exit through argparse, not reach a command function.
    from repro.cli import main
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--backend", "bogus"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err
