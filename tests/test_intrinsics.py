"""Bootstrap native-method behaviour (Math / Sys / String / Object)."""

import math

import pytest

from repro.jvm import ClassBuilder, Op

from conftest import run_main


def run_expr_src(lang_src):
    from repro.lang import compile_source
    from repro.runtime import run_original

    return run_original(source=lang_src)


def test_math_unary_functions_match_python():
    src = """
    class Main {
        static double main() {
            double s = 0.0;
            s += Math.sqrt(2.0);
            s += Math.sin(1.0);
            s += Math.cos(1.0);
            s += Math.tan(0.5);
            s += Math.log(10.0);
            s += Math.exp(1.0);
            return s;
        }
    }
    """
    expected = (math.sqrt(2) + math.sin(1) + math.cos(1) + math.tan(0.5)
                + math.log(10) + math.exp(1))
    assert abs(run_expr_src(src).result - expected) < 1e-12


def test_math_floor_ceil_return_doubles():
    src = """
    class Main {
        static double main() { return Math.floor(2.7) + Math.ceil(2.1); }
    }
    """
    assert run_expr_src(src).result == 2.0 + 3.0


def test_math_abs_and_minmax():
    src = """
    class Main {
        static double main() {
            return Math.abs(-2.5) + Math.min(1.0, 2.0) + Math.max(1.0, 2.0)
                 + (double) Math.iabs(-3) + (double) Math.imin(5, 9)
                 + (double) Math.imax(5, 9);
        }
    }
    """
    assert run_expr_src(src).result == 2.5 + 1.0 + 2.0 + 3 + 5 + 9


def test_math_atan2_quadrants():
    src = """
    class Main {
        static double main() { return Math.atan2(1.0, -1.0); }
    }
    """
    assert abs(run_expr_src(src).result - math.atan2(1, -1)) < 1e-12


def test_sys_time_reflects_simulated_clock():
    src = """
    class Main {
        static int main() {
            int t0 = Sys.nanoTime();
            double x = 0.0;
            for (int i = 0; i < 1000; i++) { x += Math.sqrt((double) i); }
            int t1 = Sys.nanoTime();
            return t1 - t0;
        }
    }
    """
    elapsed = run_expr_src(src).result
    assert elapsed > 0


def test_sys_current_time_millis_units():
    src = """
    class Main {
        static int main() { return Sys.currentTimeMillis(); }
    }
    """
    # At the very start of the simulation the clock is < 1 ms.
    assert run_expr_src(src).result == 0


def test_string_natives():
    src = """
    class Main {
        static int main() {
            String s = "hello world";
            int acc = 0;
            acc += s.length();                       // 11
            acc += s.indexOf("o");                   // 4
            acc += s.indexOf("zz");                  // -1
            acc += s.substring(0, 5).length();       // 5
            if (s.substring(6, 11).equalsStr("world") == 1) { acc += 100; }
            return acc;
        }
    }
    """
    assert run_expr_src(src).result == 11 + 4 - 1 + 5 + 100


def test_string_charat():
    src = """
    class Main {
        static int main() { return "abc".length(); }
    }
    """
    # String literals receive instance methods directly.
    assert run_expr_src(src).result == 3


def test_print_polymorphic_concat():
    src = """
    class Box { int v; }
    class Main {
        static int main() {
            Box b = new Box();
            Sys.print("box=" + b + " null=" + null + " d=" + 0.5);
            return 0;
        }
    }
    """
    rep = run_expr_src(src)
    line = rep.console[0]
    assert line.startswith("box=Box@")
    assert "null=null" in line
    assert line.endswith("d=0.5")


def test_notify_without_waiters_is_noop():
    src = """
    class Main {
        static int main() {
            Object o = new Object();
            synchronized (o) { o.notify(); o.notifyAll(); }
            return 1;
        }
    }
    """
    assert run_expr_src(src).result == 1
