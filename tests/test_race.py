"""Race-detection subsystem: vector-clock algebra, FastTrack/lockset
analysis end-to-end on deliberately-racy examples, false-positive
sweeps over the clean apps, knobs-off byte-identity, promotion
migration, composition with fault tolerance + locality, and the
`repro race` report plumbing."""

import json
from pathlib import Path

import pytest

from repro.check import run_check, run_race_check
from repro.lang import compile_source
from repro.race import ThreadClock, concurrent
from repro.race.examples import RACY_ARRAY_SOURCE, RACY_COUNTER_SOURCE
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig
from repro.runtime.tracing import DsmTracer

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# Properly synchronized counter: every access to c.v happens under the
# same monitor, so neither engine may report anything.
SYNC_COUNTER_SRC = """
class Counter { int v; }
class W extends Thread {
    Counter c;
    W(Counter c) { this.c = c; }
    void run() {
        for (int i = 0; i < 8; i++) {
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        W a = new W(c); W b = new W(c);
        a.start(); b.start(); a.join(); b.join();
        return c.v;
    }
}
"""


def _runtime(src, nodes=3, **cfg):
    classfiles = compile_source(src)
    rewritten = rewrite_application(classfiles)
    cfg.setdefault("scheduler", "round-robin")
    return JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=nodes, **cfg))


# ---------------------------------------------------------------------------
# Vector-clock algebra
# ---------------------------------------------------------------------------
def test_thread_clock_starts_at_one():
    clk = ThreadClock(3)
    assert clk.clock == 1
    assert clk.vc == {3: 1}


def test_snapshot_identity_is_per_interval():
    clk = ThreadClock(1)
    s1 = clk.snapshot()
    assert clk.snapshot() is s1          # no sync op -> same object
    clk.tick()
    s2 = clk.snapshot()
    assert s2 is not s1                  # tick copied before mutating
    assert s1 == {1: 1} and s2 == {1: 2}  # old snapshot untouched


def test_join_is_pointwise_max_and_copy_on_write():
    clk = ThreadClock(1)
    frozen = clk.snapshot()
    clk.join({2: 5, 1: 0})
    assert clk.vc == {1: 1, 2: 5}
    assert frozen == {1: 1}              # frozen snapshot not mutated
    clk.join({2: 3})                     # stale component: no-op
    assert clk.vc[2] == 5


def test_concurrent_is_symmetric():
    a = ThreadClock(1)
    b = ThreadClock(2)
    a_snap, b_snap = a.snapshot(), b.snapshot()
    # Neither has heard of the other: concurrent both ways.
    assert concurrent(1, 1, a_snap, 2, 1, b_snap)
    assert concurrent(2, 1, b_snap, 1, 1, a_snap)
    # Release/acquire edge a -> b orders them both ways.
    a.tick()
    b.join(a_snap)
    b2 = b.snapshot()
    assert not concurrent(1, 1, a_snap, 2, 1, b2)
    assert not concurrent(2, 1, b2, 1, 1, a_snap)


# ---------------------------------------------------------------------------
# Config knobs
# ---------------------------------------------------------------------------
def test_race_knobs_off_attaches_nothing():
    rt = _runtime(SYNC_COUNTER_SRC)
    assert rt.race is None
    report = rt.run()
    assert report.result == 16
    assert report.race is None


def test_race_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=2, race_detect=True,
                      race_mode="warp").validate()
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=2, race_detect=True,
                      race_max_reports=0).validate()


def test_knobs_off_is_byte_identical():
    base = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000).run()
    off = _runtime(SYNC_COUNTER_SRC, net_jitter_ns=40_000,
                   race_detect=False).run()
    assert off.result == base.result
    assert off.net.messages == base.net.messages
    assert off.net.bytes == base.net.bytes
    assert off.simulated_ns == base.simulated_ns


# ---------------------------------------------------------------------------
# Clean programs stay clean (both engines, with piggybacked clocks on)
# ---------------------------------------------------------------------------
def test_synchronized_counter_is_race_free():
    rt = _runtime(SYNC_COUNTER_SRC, race_detect=True, net_jitter_ns=60_000)
    report = rt.run()
    assert report.result == 16
    assert report.race is not None
    assert report.race["races"] == 0
    assert report.race["suppressed"] == 0
    assert report.race["events_observed"] > 0


@pytest.mark.parametrize("app", ["series", "tsp", "raytracer"])
def test_apps_sweep_race_free(app):
    rep = run_check(app=app, seeds=3, nodes=3, race=True)
    assert rep.ok, rep.summary()
    for sr in rep.results:
        assert sr.race is not None and sr.race["races"] == 0


def test_tsp_benign_race_caught_without_suppression():
    # MinTour.best is read without the lock by design (a benign bound
    # race, like SPLASH-2's); with no suppress pattern the detector
    # must catch it — proof the suppression is hiding a real finding,
    # not papering over a detector hole.
    from repro.check.runner import app_source
    rep = run_race_check(app_source("tsp"), name="tsp", seeds=1,
                         nodes=3, expect="race")
    assert rep.ok, rep.summary()
    assert all("MinTour.best" == r["variable"]
               for sr in rep.results for r in sr.reports)


# ---------------------------------------------------------------------------
# Racy examples: golden first-race assertions across seeds
# ---------------------------------------------------------------------------
def test_racy_counter_reports_on_every_seed():
    rep = run_race_check(RACY_COUNTER_SOURCE, name="racy_counter",
                         seeds=8, expect="race")
    assert rep.ok, rep.summary()
    for sr in rep.results:
        assert sr.error is None and sr.races >= 1
        # Golden race: the unsynchronized read-modify-write in
        # CounterWorker.run line 20 must show up as an hb write/write
        # pair on Counter.count with both worker sites resolved.
        golden = [
            r for r in sr.reports
            if r["variable"] == "Counter.count" and r["engine"] == "hb"
            and all(s["kind"] == "write"
                    and s["class"] == "CounterWorker"
                    and s["method"] == "run" and s["line"] == 20
                    for s in r["sites"])
        ]
        assert golden, sr.reports
        # Conflicting sites come from different threads (and the report
        # carries node + simulated-time provenance for both).
        a, b = golden[0]["sites"]
        assert a["thread"] != b["thread"]
        assert a["time_ns"] <= b["time_ns"]


def test_racy_array_reports_on_every_seed():
    rep = run_race_check(RACY_ARRAY_SOURCE, name="racy_array",
                         seeds=8, expect="race")
    assert rep.ok, rep.summary()
    for sr in rep.results:
        assert sr.races >= 1
        # The overlapping rows [6, 10) race on the shared int[] unit;
        # every report names the array class and a RowWorker.run site.
        assert all(r["variable"].startswith("int[") for r in sr.reports)
        assert any(
            all(s["class"] == "RowWorker" and s["method"] == "run"
                for s in r["sites"])
            for r in sr.reports)


def test_example_files_match_sources():
    # The on-disk examples are the single source of truth for docs and
    # CI; keep them byte-identical to the library constants.
    assert (EXAMPLES_DIR / "racy_counter.mj").read_text() == \
        RACY_COUNTER_SOURCE
    assert (EXAMPLES_DIR / "racy_array.mj").read_text() == RACY_ARRAY_SOURCE


def test_lockset_mode_alone_catches_racy_counter():
    rep = run_race_check(RACY_COUNTER_SOURCE, name="racy_counter",
                         seeds=2, mode="lockset", expect="race")
    assert rep.ok, rep.summary()
    assert all(r["engine"] == "lockset"
               for sr in rep.results for r in sr.reports)


def test_hb_mode_alone_catches_racy_counter():
    rep = run_race_check(RACY_COUNTER_SOURCE, name="racy_counter",
                         seeds=2, mode="hb", expect="race")
    assert rep.ok, rep.summary()
    assert all(r["engine"] == "hb"
               for sr in rep.results for r in sr.reports)


def test_suppression_and_expect_free():
    # Suppressing both racy variables turns the sweep race-free.
    rep = run_race_check(RACY_COUNTER_SOURCE, name="racy_counter",
                         seeds=2, expect="free",
                         suppress=("Counter.count",))
    assert rep.ok, rep.summary()
    assert all(sr.races == 0 and sr.suppressed >= 1 for sr in rep.results)


def test_max_reports_cap():
    rt = _runtime(RACY_COUNTER_SOURCE, race_detect=True, race_max_reports=1,
                  net_jitter_ns=60_000)
    report = rt.run()
    assert report.race["races"] == 1
    assert report.race["reports_dropped"] >= 1


# ---------------------------------------------------------------------------
# Detector internals observable end-to-end
# ---------------------------------------------------------------------------
def test_epoch_promotion_counters():
    # racy_counter forces both promotions: reads of count from two
    # concurrent threads (read promotion) and out-of-HB-order write
    # events at the home (write promotion).
    rt = _runtime(RACY_COUNTER_SOURCE, race_detect=True,
                  net_jitter_ns=60_000)
    report = rt.run()
    assert report.race["read_promotions"] >= 1
    assert report.race["write_promotions"] >= 1


def test_events_ship_by_piggyback_and_sync():
    rt = _runtime(RACY_COUNTER_SOURCE, race_detect=True,
                  net_jitter_ns=60_000)
    report = rt.run()
    race = report.race
    assert race["events_observed"] > 0
    # Remote events ride existing diffs when possible; anything left
    # goes out on race.sync at end-of-interval or is drained at exit.
    moved = (race["events_piggybacked"] + race["events_shipped"]
             + race["events_drained"])
    assert moved > 0
    assert race["events_piggybacked"] > 0  # diffs flow home anyway


def test_tracer_sees_race_events():
    rt = _runtime(RACY_COUNTER_SOURCE, race_detect=True,
                  net_jitter_ns=60_000)
    tracer = DsmTracer.attach(rt)
    rt.run()
    kinds = tracer.counts()
    assert any(k.startswith("race.") for k in kinds), kinds


def test_report_dict_shape():
    rt = _runtime(RACY_COUNTER_SOURCE, race_detect=True,
                  net_jitter_ns=60_000)
    report = rt.run()
    r = report.race["reports"][0]
    assert set(r) >= {"variable", "engine", "sites", "detected_ns",
                      "suppressed"}
    for side in r["sites"]:
        assert set(side) >= {"kind", "class", "method", "pc", "line",
                             "node", "thread", "time_ns"}
    assert json.dumps(report.race)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# Composition: race + fault tolerance + locality on one runtime
# ---------------------------------------------------------------------------
def test_race_composes_with_kill_and_locality():
    rep = run_check(app="series", seeds=1, nodes=4, kill="random",
                    locality="all", race=True)
    assert rep.ok, rep.summary()
    sr = rep.results[0]
    assert sr.race is not None
    assert sr.race["races"] == 0
    # Recovery wiped the metadata: degraded, but never inventing races.
    assert sr.race["degraded"] is True


def test_run_race_check_rejects_bad_args():
    with pytest.raises(ValueError):
        run_race_check(RACY_COUNTER_SOURCE, seeds=0)
    with pytest.raises(ValueError):
        run_race_check(RACY_COUNTER_SOURCE, expect="maybe")
