"""End-to-end MiniJava compiler tests: source → bytecode → VM result."""

import pytest

from repro.lang import CompileError, ParseError, TypeError_, compile_source

from conftest import run_main


def run_src(source: str, main_class: str = "Main", **kw):
    classes = compile_source(source)
    jvm, thread = run_main(classes, main_class, **kw)
    return thread.result, jvm


def result_of(source: str, **kw):
    return run_src(source, **kw)[0]


# ---------------------------------------------------------------------------
# Expressions & statements
# ---------------------------------------------------------------------------
def test_arithmetic_precedence():
    src = "class Main { static int main() { return 2 + 3 * 4 - 10 / 2; } }"
    assert result_of(src) == 9


def test_integer_division_truncates():
    src = "class Main { static int main() { return -7 / 2; } }"
    assert result_of(src) == -3


def test_double_arithmetic_and_casts():
    src = """
    class Main {
        static int main() {
            double x = 7;          // implicit widening
            double y = x / 2.0;    // 3.5
            return (int) (y * 2.0);
        }
    }
    """
    assert result_of(src) == 7


def test_mixed_int_double_promotes():
    src = "class Main { static double main() { return 1 / 2.0; } }"
    assert result_of(src) == 0.5


def test_boolean_logic_short_circuit():
    src = """
    class Main {
        static int calls = 0;
        static boolean bump() { calls = calls + 1; return true; }
        static int main() {
            boolean a = false && bump();
            boolean b = true || bump();
            if (a || !b) { return -1; }
            return calls;
        }
    }
    """
    assert result_of(src) == 0


def test_comparison_chain_with_if_else():
    src = """
    class Main {
        static int classify(int x) {
            if (x < 0) { return -1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        static int main() {
            return classify(-5) * 100 + classify(0) * 10 + classify(7);
        }
    }
    """
    assert result_of(src) == -99  # (-1*100) + (0*10) + 1


def test_while_loop_and_compound_assign():
    src = """
    class Main {
        static int main() {
            int acc = 0;
            int i = 0;
            while (i < 10) { acc += i; i++; }
            return acc;
        }
    }
    """
    assert result_of(src) == 45


def test_for_loop_with_break_continue():
    src = """
    class Main {
        static int main() {
            int acc = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                acc += i;
            }
            return acc;   // 1+3+5+7+9 = 25
        }
    }
    """
    assert result_of(src) == 25


def test_nested_loops_break_inner_only():
    src = """
    class Main {
        static int main() {
            int count = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == 2) { break; }
                    count++;
                }
            }
            return count;
        }
    }
    """
    assert result_of(src) == 6


def test_string_concat_and_print():
    src = """
    class Main {
        static int main() {
            Sys.print("value=" + 42 + " pi=" + 3.5);
            return 0;
        }
    }
    """
    result, jvm = run_src(src)
    assert jvm.output == ["value=42 pi=3.5"]


def test_string_methods():
    src = """
    class Main {
        static int main() {
            String s = "hello world";
            return s.length() + s.indexOf("world");
        }
    }
    """
    assert result_of(src) == 17


def test_bitwise_and_shifts():
    src = """
    class Main {
        static int main() {
            int x = 1 << 10;
            x = x | 15;
            x = x & ~3;
            return x >> 2;
        }
    }
    """
    assert result_of(src) == (((1 << 10) | 15) & ~3) >> 2


def test_unary_not_materialized():
    src = """
    class Main {
        static int main() {
            boolean t = !(3 < 2);
            if (t) { return 1; }
            return 0;
        }
    }
    """
    assert result_of(src) == 1


def test_char_literals_are_ints():
    src = "class Main { static int main() { return 'a' + 1; } }"
    assert result_of(src) == ord("a") + 1


def test_comments_ignored():
    src = """
    // leading comment
    class Main {
        /* block
           comment */
        static int main() { return 5; } // trailing
    }
    """
    assert result_of(src) == 5


# ---------------------------------------------------------------------------
# Classes, objects, inheritance
# ---------------------------------------------------------------------------
def test_fields_constructor_methods():
    src = """
    class Vec {
        double x;
        double y;
        Vec(double x0, double y0) { x = x0; y = y0; }
        double dot(Vec o) { return x * o.x + y * o.y; }
    }
    class Main {
        static int main() {
            Vec a = new Vec(1.0, 2.0);
            Vec b = new Vec(3.0, 4.0);
            return (int) a.dot(b);
        }
    }
    """
    assert result_of(src) == 11


def test_this_disambiguates_params():
    src = """
    class C {
        int v;
        C(int v) { this.v = v; }
        int get() { return this.v; }
    }
    class Main { static int main() { return new C(9).get(); } }
    """
    assert result_of(src) == 9


def test_inheritance_and_virtual_dispatch():
    src = """
    class Shape {
        double area() { return 0.0; }
        String name() { return "shape"; }
    }
    class Circle extends Shape {
        double r;
        Circle(double r) { this.r = r; }
        double area() { return 3.0 * r * r; }
        String name() { return "circle"; }
    }
    class Square extends Shape {
        double s;
        Square(double s) { this.s = s; }
        double area() { return s * s; }
    }
    class Main {
        static int main() {
            Shape a = new Circle(2.0);
            Shape b = new Square(3.0);
            Sys.print(a.name() + "+" + b.name());
            return (int) (a.area() + b.area());
        }
    }
    """
    result, jvm = run_src(src)
    assert result == 21
    assert jvm.output == ["circle+shape"]


def test_super_constructor_chain():
    src = """
    class A {
        int base;
        A(int b) { base = b; }
    }
    class B extends A {
        int extra;
        B(int b, int e) { super(b); extra = e; }
        int total() { return base + extra; }
    }
    class Main { static int main() { return new B(10, 5).total(); } }
    """
    assert result_of(src) == 15


def test_static_fields_and_methods():
    src = """
    class Registry {
        static int count = 100;
        static int next() { count = count + 1; return count; }
    }
    class Main {
        static int main() {
            Registry.next();
            Registry.next();
            return Registry.count;
        }
    }
    """
    assert result_of(src) == 102


def test_instanceof_and_class_cast():
    src = """
    class Animal { int noise() { return 0; } }
    class Dog extends Animal {
        int noise() { return 1; }
        int fetch() { return 99; }
    }
    class Main {
        static int main() {
            Animal a = new Dog();
            if (a instanceof Dog) {
                Dog d = (Dog) a;
                return d.fetch();
            }
            return -1;
        }
    }
    """
    assert result_of(src) == 99


def test_null_checks_and_ref_equality():
    src = """
    class Node { Node next; int v; }
    class Main {
        static int main() {
            Node n = new Node();
            if (n.next == null) { n.v = 7; }
            Node m = n;
            if (m == n) { n.v = n.v + 1; }
            return n.v;
        }
    }
    """
    assert result_of(src) == 8


def test_recursive_methods():
    src = """
    class Main {
        static int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        static int main() { return fact(10); }
    }
    """
    assert result_of(src) == 3628800


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------
def test_array_basics():
    src = """
    class Main {
        static int main() {
            int[] a = new int[10];
            for (int i = 0; i < a.length; i++) { a[i] = i * i; }
            int sum = 0;
            for (int i = 0; i < a.length; i++) { sum += a[i]; }
            return sum;
        }
    }
    """
    assert result_of(src) == sum(i * i for i in range(10))


def test_array_of_objects():
    src = """
    class Box { int v; Box(int v) { this.v = v; } }
    class Main {
        static int main() {
            Box[] boxes = new Box[3];
            for (int i = 0; i < 3; i++) { boxes[i] = new Box(i + 1); }
            return boxes[0].v + boxes[1].v + boxes[2].v;
        }
    }
    """
    assert result_of(src) == 6


def test_nested_arrays():
    src = """
    class Main {
        static int main() {
            int[][] grid = new int[3][];
            for (int i = 0; i < 3; i++) {
                grid[i] = new int[4];
                for (int j = 0; j < 4; j++) { grid[i][j] = i * 4 + j; }
            }
            return grid[2][3];
        }
    }
    """
    assert result_of(src) == 11


def test_double_array():
    src = """
    class Main {
        static double main() {
            double[] xs = new double[4];
            xs[0] = 1.5; xs[1] = 2.5; xs[2] = 3.0; xs[3] = 3.0;
            double s = 0.0;
            for (int i = 0; i < xs.length; i++) { s += xs[i]; }
            return s;
        }
    }
    """
    assert result_of(src) == 10.0


def test_array_passed_to_method_aliases():
    src = """
    class Main {
        static void fill(int[] a, int v) {
            for (int i = 0; i < a.length; i++) { a[i] = v; }
        }
        static int main() {
            int[] a = new int[5];
            fill(a, 3);
            return a[4];
        }
    }
    """
    assert result_of(src) == 3


# ---------------------------------------------------------------------------
# Math natives
# ---------------------------------------------------------------------------
def test_math_functions():
    src = """
    class Main {
        static int main() {
            double x = Math.sqrt(144.0) + Math.pow(2.0, 5.0);
            return (int) x + Math.imax(3, 9);
        }
    }
    """
    assert result_of(src) == 12 + 32 + 9


# ---------------------------------------------------------------------------
# Threads and synchronization through the source language
# ---------------------------------------------------------------------------
def test_synchronized_block_counter():
    src = """
    class Counter { int v; }
    class Incr extends Thread {
        Counter c;
        int n;
        Incr(Counter c, int n) { this.c = c; this.n = n; }
        void run() {
            for (int i = 0; i < n; i++) {
                synchronized (c) { c.v += 1; }
            }
        }
    }
    class Main {
        static int main() {
            Counter c = new Counter();
            Incr a = new Incr(c, 500);
            Incr b = new Incr(c, 500);
            a.start(); b.start();
            a.join(); b.join();
            return c.v;
        }
    }
    """
    assert result_of(src) == 1000


def test_synchronized_method():
    src = """
    class Account {
        int balance;
        synchronized void deposit(int amount) { balance += amount; }
        synchronized int get() { return balance; }
    }
    class Depositor extends Thread {
        Account acct;
        Depositor(Account a) { acct = a; }
        void run() {
            for (int i = 0; i < 100; i++) { acct.deposit(2); }
        }
    }
    class Main {
        static int main() {
            Account acct = new Account();
            Depositor[] ds = new Depositor[4];
            for (int i = 0; i < 4; i++) { ds[i] = new Depositor(acct); ds[i].start(); }
            for (int i = 0; i < 4; i++) { ds[i].join(); }
            return acct.get();
        }
    }
    """
    assert result_of(src) == 800


def test_wait_notify_through_source():
    src = """
    class Flag { int raised; }
    class Raiser extends Thread {
        Flag f;
        Raiser(Flag f) { this.f = f; }
        void run() {
            synchronized (f) { f.raised = 1; f.notifyAll(); }
        }
    }
    class Main {
        static int main() {
            Flag f = new Flag();
            new Raiser(f).start();
            synchronized (f) {
                while (f.raised == 0) { f.wait(); }
            }
            return f.raised;
        }
    }
    """
    assert result_of(src) == 1


def test_return_inside_synchronized_releases_monitor():
    src = """
    class Lockbox {
        int v;
        int readTwice() {
            synchronized (this) { if (v == 0) { return -1; } }
            synchronized (this) { return v; }
        }
    }
    class Main {
        static int main() {
            Lockbox b = new Lockbox();
            int first = b.readTwice();
            b.v = 5;
            return first + b.readTwice();
        }
    }
    """
    assert result_of(src) == 4


# ---------------------------------------------------------------------------
# Compile-time error detection
# ---------------------------------------------------------------------------
def test_type_error_assign_double_to_int():
    src = "class Main { static int main() { int x = 1.5; return x; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_undefined_variable_rejected():
    src = "class Main { static int main() { return nope; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_undefined_method_rejected():
    src = "class Main { static int main() { return missing(); } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_wrong_arg_count_rejected():
    src = """
    class Main {
        static int f(int a, int b) { return a + b; }
        static int main() { return f(1); }
    }
    """
    with pytest.raises(TypeError_):
        compile_source(src)


def test_condition_must_be_boolean():
    src = "class Main { static int main() { if (1) { return 1; } return 0; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_missing_return_rejected():
    src = "class Main { static int main() { int x = 1; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_break_outside_loop_rejected():
    src = "class Main { static void main() { break; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_duplicate_variable_rejected():
    src = "class Main { static void main() { int x = 1; int x = 2; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_unknown_class_rejected():
    src = "class Main { static void main() { Widget w = null; } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_extends_unknown_rejected():
    src = "class Main extends Ghost { static void main() { } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_this_in_static_rejected():
    src = """
    class Main {
        int v;
        static int main() { return this.v; }
    }
    """
    with pytest.raises(TypeError_):
        compile_source(src)


def test_native_user_method_rejected():
    src = "class Main { native int magic(); static void main() { } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_static_synchronized_rejected():
    src = "class Main { static synchronized void main() { } }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_parse_error_reported_with_line():
    src = "class Main { static int main() { return 1 +; } }"
    with pytest.raises(ParseError):
        compile_source(src)


def test_inheritance_cycle_rejected():
    src = "class A extends B { } class B extends A { }"
    with pytest.raises(TypeError_):
        compile_source(src)


def test_sync_on_primitive_rejected():
    src = "class Main { static void main() { synchronized (3) { } } }"
    with pytest.raises(TypeError_):
        compile_source(src)
