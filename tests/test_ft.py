"""Fault-tolerance subsystem tests: buddy replication, heartbeat
failure detection, epoch fencing, and oracle-verified kill/recover
sweeps over the benchmark apps."""

import pytest

from repro.check.faults import FaultInjector, FaultPlan, parse_time_ns
from repro.check.runner import app_source, parse_kill, run_check
from repro.ft import MasterFailedError, ReplicaStore, buddy_of
from repro.lang import compile_source
from repro.net import NetStats, SimNetwork, Transport
from repro.net.message import Message
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig, run_distributed
from repro.sim import SUN, NS_PER_MS, SimEngine


# ---------------------------------------------------------------------------
# Buddy assignment
# ---------------------------------------------------------------------------
def test_buddy_is_next_in_ring():
    assert buddy_of(0, 4) == 1
    assert buddy_of(3, 4) == 0


def test_buddy_skips_dead_nodes():
    assert buddy_of(0, 4, dead=(1,)) == 2
    assert buddy_of(3, 4, dead=(0, 1)) == 2


def test_buddy_requires_a_live_peer():
    with pytest.raises(ValueError):
        buddy_of(0, 1)
    with pytest.raises(ValueError):
        buddy_of(0, 3, dead=(1, 2))


# ---------------------------------------------------------------------------
# Replica store
# ---------------------------------------------------------------------------
def _unit(gid, version, region=None, data=b"x"):
    return {"gid": gid, "region": region, "version": version, "data": data}


def test_replica_store_keeps_newest_version():
    store = ReplicaStore()
    store.put(1, _unit(7, 1, data=b"old"))
    store.put(1, _unit(7, 3, data=b"new"))
    store.put(1, _unit(7, 2, data=b"stale"))  # reordered straggler
    assert store.version_of(1, 7) == 3
    assert store.units_of(1)[0]["data"] == b"new"


def test_replica_store_same_version_overwrites():
    # The dirty-master-serve case: fresher bytes, version not yet bumped.
    store = ReplicaStore()
    store.put(1, _unit(7, 2, data=b"clean"))
    store.put(1, _unit(7, 2, data=b"dirty"))
    assert store.units_of(1)[0]["data"] == b"dirty"


def test_replica_store_orders_units_deterministically():
    store = ReplicaStore()
    store.put(2, _unit(9, 1, region=1))
    store.put(2, _unit(9, 1, region=0))
    store.put(2, _unit(8, 1))
    keys = [(u["gid"], u["region"]) for u in store.units_of(2)]
    assert keys == [(8, None), (9, 0), (9, 1)]
    assert len(store) == 3


# ---------------------------------------------------------------------------
# Transport: unreachable reports + failure epochs
# ---------------------------------------------------------------------------
def _reliable_pair():
    eng = SimEngine()
    net = SimNetwork(eng)
    ta = Transport(net, 0, SUN, reliable=True)
    tb = Transport(net, 1, SUN, reliable=True)
    return eng, net, ta, tb


def test_peer_unreachable_fires_once_per_peer():
    eng, net, ta, tb = _reliable_pair()
    reported = []
    ta.on_peer_unreachable = reported.append
    net.detach(1)
    ta.send(1, "m", {"i": 0})
    ta.send(1, "m", {"i": 1})
    eng.run_until_idle()
    assert reported == [1]
    assert ta.stats.unreachable_events >= 1


def test_mark_dead_drops_sends_and_frames():
    eng, net, ta, tb = _reliable_pair()
    got = []
    tb.on("m", lambda m: got.append(m.payload["i"]))
    ta.on("m", lambda m: None)
    tb.mark_dead(0)              # b declares a dead
    ta.send(1, "m", {"i": 0})    # frame from the "dead" peer: discarded
    tb.send(0, "m", {"i": 1})    # send to a dead peer: dropped at source
    eng.run_until_idle()
    assert got == []
    assert tb.stats.stale_dropped >= 1
    assert tb.stats.to_dead_dropped >= 1


def test_epoch_quarantine_discards_old_epoch_frames():
    """Dead-epoch stragglers are filtered; current-epoch frames pass."""
    eng, net, ta, tb = _reliable_pair()
    tb.quarantine_epoch(0, min_epoch=1)
    assert tb._stale(Message("m", 0, 1, {"__epoch__": 0}))
    assert not tb._stale(Message("m", 0, 1, {"__epoch__": 1}))
    # End-to-end: a sender already in the new epoch gets through.
    ta.stamp_epoch = True
    ta.epoch = 1
    got = []
    tb.on("m", lambda m: got.append(m.payload["i"]))
    ta.send(1, "m", {"i": 1})
    eng.run_until_idle()
    assert got == [1]
    assert tb.stats.stale_dropped == 0


def test_stamped_stale_frame_is_counted():
    eng, net, ta, tb = _reliable_pair()
    ta.stamp_epoch = True               # stamps epoch 0
    tb.quarantine_epoch(0, min_epoch=1)
    got = []
    tb.on("m", lambda m: got.append(m.payload["i"]))
    ta.send(1, "m", {"i": 0})
    eng.run_until_idle()                # ARQ gives up: every copy stale
    assert got == []
    assert tb.stats.stale_dropped >= 1
    assert ta.stats.gave_up >= 1


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------
def test_parse_time_ns_suffixes():
    assert parse_time_ns("5ms") == 5 * NS_PER_MS
    assert parse_time_ns("250us") == 250_000
    assert parse_time_ns("1.5s") == 1_500_000_000
    assert parse_time_ns("42ns") == 42
    assert parse_time_ns("1000") == 1000


def test_fault_spec_detach_with_node_and_time():
    plan = FaultPlan.from_spec("drop,detach:2@5ms", seed=3)
    assert plan.drop_rate > 0
    assert plan.detach_node == 2
    assert plan.detach_at_ns == 5 * NS_PER_MS
    assert plan.lossy


def test_fault_spec_bare_detach_still_rejected():
    with pytest.raises(ValueError, match="detach"):
        FaultPlan.from_spec("detach")
    with pytest.raises(ValueError, match="detach"):
        FaultPlan.from_spec("detach:2")      # no time
    with pytest.raises(ValueError):
        FaultPlan.from_spec("drop:0.5")      # stray argument


def test_parse_kill_fixed_and_random():
    assert parse_kill("2@5ms", seed=0, nodes=3) == (2, 5 * NS_PER_MS)
    node0, at0 = parse_kill("random", seed=0, nodes=3)
    node1, at1 = parse_kill("random", seed=1, nodes=3)
    assert node0 != 0 and node1 != 0           # never the master
    assert (node0, at0) == parse_kill("random", seed=0, nodes=3)
    assert (node0, at0) != (node1, at1)        # seeds explore the space
    with pytest.raises(ValueError, match="master"):
        parse_kill("0@5ms", seed=0, nodes=3)
    with pytest.raises(ValueError, match="range"):
        parse_kill("9@5ms", seed=0, nodes=3)
    with pytest.raises(ValueError, match="kill spec"):
        parse_kill("5ms", seed=0, nodes=3)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
def test_ft_config_requires_buddy_and_arq():
    with pytest.raises(ValueError, match="num_nodes"):
        RuntimeConfig(num_nodes=1, ft_enabled=True,
                      reliable_transport=True).validate()
    with pytest.raises(ValueError, match="reliable_transport"):
        RuntimeConfig(num_nodes=3, ft_enabled=True).validate()
    cfg = RuntimeConfig(num_nodes=3, ft_enabled=True,
                        reliable_transport=True)
    cfg.dsm.timestamp_mode = "vector"
    with pytest.raises(ValueError, match="scalar"):
        cfg.validate()


# ---------------------------------------------------------------------------
# NetStats fault-tolerance breakdown
# ---------------------------------------------------------------------------
def test_netstats_ft_overhead_groups():
    stats = NetStats()
    stats.record(Message("ft.ping", 1, 0, {}, size_bytes=40))
    stats.record(Message("ft.ping", 2, 0, {}, size_bytes=40))
    stats.record(Message("ft.suspect", 1, 0, {}, size_bytes=40))
    stats.record(Message("ft.repl", 0, 1, {}, size_bytes=100))
    stats.record(Message("ft.rediff", 1, 2, {}, size_bytes=60))
    stats.record(Message("ft.notices", 2, 1, {}, size_bytes=50))
    stats.record(Message("dsm.diff", 1, 0, {}, size_bytes=80))
    groups = stats.ft_overhead()
    assert groups["heartbeat"] == (3, 120)
    assert groups["replication"] == (1, 100)
    assert groups["recovery"][0] == 2
    assert "ft overhead" in stats.summary()


# ---------------------------------------------------------------------------
# Kill/recover integration (oracle + monitor verified via run_check)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app,kill", [
    ("series", "1@5ms"),
    ("series", "2@18ms"),
    ("tsp", "2@8ms"),
    ("tsp", "1@35ms"),
    ("raytracer", "1@5ms"),
    ("raytracer", "2@18ms"),
])
def test_kill_and_recover_is_oracle_clean(app, kill):
    report = run_check(app=app, seeds=1, kill=kill)
    assert report.ok, report.summary()
    sr = report.results[0]
    assert sr.error is None            # in particular: no DeadlockError
    assert sr.ft is not None
    for rec in sr.ft["recoveries"]:
        # Recovery itself is bounded: the repair runs at the detection
        # instant apart from a short in-flight token drain.
        assert rec["recovered_ns"] - rec["detected_ns"] <= 10 * NS_PER_MS


def test_kill_exercises_adoption_and_lock_repair():
    """At 35 ms into tsp, worker 1 is home to escaped shared objects and
    lock traffic is in flight: recovery must adopt units at the buddy
    and repair the token space (deterministic seeded schedule)."""
    report = run_check(app="tsp", seeds=1, kill="1@35ms")
    assert report.ok, report.summary()
    recs = report.results[0].ft["recoveries"]
    assert len(recs) == 1
    assert recs[0]["units_adopted"] >= 1


def test_kill_token_reissue_series():
    report = run_check(app="series", seeds=1, kill="2@18ms")
    assert report.ok, report.summary()
    recs = report.results[0].ft["recoveries"]
    if recs:  # kill landed while the app was still running
        rec = recs[0]
        assert (rec["tokens_reissued"] + rec["lock_requests_reissued"]
                + rec["threads_respawned"]) >= 1


def test_kill_sweep_reports_recoveries():
    report = run_check(app="series", seeds=3, kill="random")
    assert report.ok, report.summary()
    assert "nodes killed" in report.summary()


def test_master_kill_is_not_survivable():
    source = compile_source(app_source("series"))
    rewritten = rewrite_application(list(source))
    config = RuntimeConfig(num_nodes=3, reliable_transport=True,
                           ft_enabled=True)
    rt = JavaSplitRuntime(rewritten, config)
    with pytest.raises(MasterFailedError):
        rt.ft.on_failure(0)


def test_kill_rejects_master_and_vector_mode():
    with pytest.raises(ValueError, match="master"):
        run_check(app="series", seeds=1, kill="0@5ms")
    with pytest.raises(ValueError, match="scalar"):
        run_check(app="series", seeds=1, kill="1@5ms",
                  timestamp_mode="vector")


# ---------------------------------------------------------------------------
# ft_enabled=False stays inert
# ---------------------------------------------------------------------------
def test_ft_disabled_runs_clean_with_no_ft_traffic():
    report = run_distributed(source=app_source("series"), num_nodes=3)
    assert report.ft is None
    ft_msgs, ft_bytes = report.net.prefix_totals("ft.")
    assert (ft_msgs, ft_bytes) == (0, 0)


def test_detach_without_runtime_does_not_halt_anything():
    """A bare-network injector (no runtime attached) still only unplugs
    the endpoint — the fail-stop halt needs runtime context."""
    eng = SimEngine()
    net = SimNetwork(eng)
    net.attach(1, SUN, lambda m: None)
    inj = FaultInjector(net, FaultPlan(seed=0))
    inj.detach_now(1)
    assert inj.stats.detached == [1]
    assert not net.is_attached(1)
