"""Cross-backend differential harness for the multiprocess transport.

The proc backend must be *observationally identical* to the sim
backend: same program result, same console, same simulated clock, same
per-type protocol message counts, same final heap — with every frame
additionally carried over real sockets between real OS processes.
These tests run each benchmark app under both backends with identical
configs and diff everything, then exercise the failure paths: a
``--kill`` style detach must SIGKILL the worker process, and a worker
killed *externally* must be detected and recovered by the
fault-tolerance subsystem with a clean oracle.
"""

from __future__ import annotations

import os
import signal
from typing import Any, Dict, Tuple

import pytest

from repro.check.oracle import SingleCopyOracle, normalize_slots
from repro.check.runner import DEFAULT_JITTER_NS, app_source, run_check
from repro.dsm.objectstate import ObjState
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime.config import RuntimeConfig
from repro.runtime.javasplit import JavaSplitRuntime
from repro.sim.engine import NS_PER_MS

APPS = ("series", "tsp", "raytracer")


def build_runtime(app: str, backend: str, **overrides) -> JavaSplitRuntime:
    """A 3-node runtime for ``app`` with the checked-run jitter profile.

    Both backends get byte-identical configs (same seed, same jitter)
    so a deterministic protocol must produce identical schedules.
    """
    config = RuntimeConfig(
        num_nodes=3,
        net_jitter_ns=DEFAULT_JITTER_NS,
        seed=0,
        transport_backend=backend,
        **overrides,
    )
    rewritten = rewrite_application(compile_source(app_source(app)))
    return JavaSplitRuntime(rewritten, config)


def heap_fingerprint(runtime: JavaSplitRuntime) -> Dict[int, Tuple]:
    """Comparable snapshot of every master (HOME) copy in the cluster.

    The masters collectively *are* the authoritative final heap.
    Unpromoted local refs carry no cross-run identity, so their
    id()-based tags are collapsed before comparison.
    """
    snap: Dict[int, Tuple] = {}
    for worker in runtime.workers:
        if getattr(worker, "dead", False):
            continue
        dsm = worker.dsm
        for gid, obj in dsm.cache.items():
            hdr = obj.header
            if hdr is None or not hdr.gid or hdr.state != ObjState.HOME:
                continue
            slots = tuple(
                ("localref",) if isinstance(v, tuple) and v
                and v[0] == "localref" else v
                for v in normalize_slots(
                    SingleCopyOracle._unit_slots(dsm, obj, None)))
            snap[gid] = (type(obj).__name__, hdr.version, slots)
    return snap


def run_both(app: str, **overrides):
    """Run ``app`` on sim and proc with identical configs."""
    out = {}
    for backend in ("sim", "proc"):
        runtime = build_runtime(app, backend, **overrides)
        report = runtime.run()
        out[backend] = (report, heap_fingerprint(runtime))
    return out["sim"], out["proc"]


# ---------------------------------------------------------------------------
# Differential runs: every observable must match across backends
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app", APPS)
def test_backends_observationally_identical(app, proc_guard):
    (sim, sim_heap), (proc, proc_heap) = run_both(app)

    assert proc.result == sim.result
    assert sorted(proc.console) == sorted(sim.console)
    assert proc.simulated_ns == sim.simulated_ns
    assert proc.threads_run == sim.threads_run
    assert proc.net.messages == sim.net.messages
    assert proc.net.bytes == sim.net.bytes
    # Per-type protocol counts are the strongest cheap schedule probe:
    # a single reordered fetch or extra retransmission shows up here.
    assert proc.net.by_type == sim.net.by_type
    assert proc_heap == sim_heap
    assert sim_heap, "fingerprint should cover a non-trivial heap"

    # And the proc run must have genuinely used the wire plane.
    assert proc.backend == "proc" and sim.backend == "sim"
    assert proc.wall_seconds > 0
    assert sim.proc is None
    wire = proc.proc
    assert wire["wire_frames"] == proc.net.messages
    assert wire["wire_fallback"] == 0
    assert wire["wire_delivered"] > 0
    assert proc.net.wire_bytes == wire["wire_bytes"] > 0
    relayed = sum(w["frames_relayed"] for w in wire["workers"].values())
    assert relayed == wire["wire_delivered"]


def test_proc_backend_over_tcp_sockets(proc_guard):
    """The TCP socket flavor must be just as invisible as unix sockets."""
    (sim, sim_heap), (proc, proc_heap) = run_both(
        "series", proc_socket_kind="tcp")
    assert proc.result == sim.result
    assert proc.net.by_type == sim.net.by_type
    assert proc_heap == sim_heap
    assert proc.proc["socket_kind"] == "tcp"
    assert proc.proc["wire_fallback"] == 0


# ---------------------------------------------------------------------------
# Kill paths: detach == SIGKILL of a real process
# ---------------------------------------------------------------------------
def test_kill_sweep_on_proc_backend_passes_oracle(proc_guard):
    """``repro check --kill`` semantics on the proc backend: the seeded
    sweep must survive the SIGKILL'd worker with a clean oracle."""
    report = run_check(app="series", seeds=2, kill="1@5ms", nodes=3,
                       backend="proc")
    assert report.backend == "proc"
    for sr in report.results:
        assert sr.error is None
        assert sr.violations == []
        assert sr.result_matches and sr.console_matches
        assert sr.ft is not None and sr.ft["dead_nodes"] == [1]
        assert sr.finals_checked > 0


def test_detach_sigkills_the_worker_process(proc_guard):
    """A runtime-driven detach (the --kill path) must map to a real
    SIGKILL: the worker process dies with -SIGKILL, not a clean exit,
    and the run still converges to the sim result."""
    sim_rt = build_runtime("series", "sim", ft_enabled=True,
                           reliable_transport=True)
    sim_rt.engine.schedule_at(5 * NS_PER_MS, lambda: (
        sim_rt.network.detach(1), sim_rt.workers[1].node.halt()))
    sim_report = sim_rt.run()

    rt = build_runtime("series", "proc", ft_enabled=True,
                       reliable_transport=True)
    killed: Dict[str, Any] = {}

    def kill_node():
        killed["proc"] = rt.network._procs[1]
        rt.network.detach(1)
        rt.workers[1].node.halt()

    rt.engine.schedule_at(5 * NS_PER_MS, kill_node)
    report = rt.run()

    assert killed["proc"].exitcode == -signal.SIGKILL
    assert report.result == sim_report.result
    assert report.ft["dead_nodes"] == sim_report.ft["dead_nodes"] == [1]
    assert not rt.network.proc_alive(1)


def test_external_sigkill_is_detected_and_recovered(proc_guard):
    """A worker killed from *outside* the runtime (kill -9 at the shell)
    must be noticed by the master, surfaced as a node death, and
    recovered by the heartbeat/replication machinery with the oracle
    passing — the failure mode the sim backend can only pretend at."""
    rt = build_runtime("series", "proc", ft_enabled=True,
                       reliable_transport=True)
    oracle = SingleCopyOracle.attach(rt)

    def murder():
        os.kill(rt.network.proc_pids[2], signal.SIGKILL)

    rt.engine.schedule_at(5 * NS_PER_MS, murder)
    report = rt.run()

    assert report.ft["failures_detected"] >= 1
    assert report.ft["dead_nodes"] == [2]
    assert oracle.finalize() == []

    ref = build_runtime("series", "sim").run()
    assert report.result == ref.result
    assert sorted(report.console) == sorted(ref.console)
