"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimEngine, SimulationError


def test_clock_starts_at_zero():
    eng = SimEngine()
    assert eng.now == 0
    assert eng.now_seconds == 0.0


def test_events_fire_in_time_order():
    eng = SimEngine()
    fired = []
    eng.schedule(30, lambda: fired.append("c"))
    eng.schedule(10, lambda: fired.append("a"))
    eng.schedule(20, lambda: fired.append("b"))
    eng.run_until_idle()
    assert fired == ["a", "b", "c"]
    assert eng.now == 30


def test_same_time_events_fire_fifo():
    eng = SimEngine()
    fired = []
    for i in range(10):
        eng.schedule(5, lambda i=i: fired.append(i))
    eng.run_until_idle()
    assert fired == list(range(10))


def test_zero_delay_fires_after_current_instant_queue():
    eng = SimEngine()
    fired = []
    eng.schedule(0, lambda: fired.append(1))
    eng.schedule(0, lambda: (fired.append(2), eng.schedule(0, lambda: fired.append(3))))
    eng.run_until_idle()
    assert fired == [1, 2, 3]


def test_negative_delay_rejected():
    eng = SimEngine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    eng = SimEngine()
    seen = []
    eng.schedule_at(100, lambda: seen.append(eng.now))
    eng.run_until_idle()
    assert seen == [100]
    with pytest.raises(SimulationError):
        eng.schedule_at(50, lambda: None)


def test_cancellation():
    eng = SimEngine()
    fired = []
    h = eng.schedule(10, lambda: fired.append("x"))
    eng.schedule(5, lambda: h.cancel())
    eng.run_until_idle()
    assert fired == []
    assert h.cancelled


def test_run_until_bound_advances_clock():
    eng = SimEngine()
    fired = []
    eng.schedule(10, lambda: fired.append(1))
    eng.schedule(100, lambda: fired.append(2))
    n = eng.run(until_ns=50)
    assert n == 1
    assert fired == [1]
    assert eng.now == 50
    eng.run_until_idle()
    assert fired == [1, 2]
    assert eng.now == 100


def test_run_max_events():
    eng = SimEngine()
    count = [0]

    def recur():
        count[0] += 1
        eng.schedule(1, recur)

    eng.schedule(1, recur)
    eng.run(max_events=100)
    assert count[0] == 100


def test_run_until_idle_guards_runaway():
    eng = SimEngine()

    def recur():
        eng.schedule(1, recur)

    eng.schedule(1, recur)
    with pytest.raises(SimulationError):
        eng.run_until_idle(max_events=1000)


def test_stop_when_predicate():
    eng = SimEngine()
    fired = []
    for i in range(10):
        eng.schedule(i + 1, lambda i=i: fired.append(i))
    eng.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_events_fired_counter():
    eng = SimEngine()
    for i in range(5):
        eng.schedule(i, lambda: None)
    eng.run_until_idle()
    assert eng.events_fired == 5


def test_nested_scheduling_during_callback():
    eng = SimEngine()
    times = []

    def outer():
        times.append(eng.now)
        eng.schedule(7, inner)

    def inner():
        times.append(eng.now)

    eng.schedule(3, outer)
    eng.run_until_idle()
    assert times == [3, 10]


def test_pending_count_excludes_cancelled():
    eng = SimEngine()
    h1 = eng.schedule(10, lambda: None)
    eng.schedule(20, lambda: None)
    assert eng.pending == 2
    h1.cancel()
    assert eng.pending == 1
