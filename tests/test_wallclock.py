"""Wall-clock telemetry plane: histogram merging, the cluster-wide
WallClockStats store, the flight-recorder ring, and the invariant that
switching the wall-clock knobs on never moves a deterministic
observable (wall time is *observed*, never fed back into the sim)."""

from __future__ import annotations

import json

import pytest

from repro.check.runner import app_source
from repro.lang import compile_source
from repro.obs.flight import (FLIGHT_SCHEMA, FlightRecorder, build_dump,
                              validate_flight_dump, write_dump)
from repro.obs.metrics import Histogram
from repro.obs.wallclock import WallClockStats
from repro.rewriter import rewrite_application
from repro.runtime.config import RuntimeConfig
from repro.runtime.javasplit import JavaSplitRuntime


# ---------------------------------------------------------------------------
# Histogram.merge / from_dict — the cross-node aggregation primitives
# ---------------------------------------------------------------------------
def test_histogram_merge_aligns_buckets_and_sums_counts():
    a, b = Histogram(), Histogram()
    for v in (1, 3, 100, 5000):
        a.observe(v)
    for v in (2, 3, 700_000):
        b.observe(v)
    a.merge(b)
    assert a.count == 7
    assert a.total == 1 + 3 + 100 + 5000 + 2 + 3 + 700_000
    # Same-valued samples from both sides land in one shared bucket.
    k3 = (3 - 1).bit_length()
    assert a.buckets[k3] == 2
    assert sum(a.buckets.values()) == a.count


def test_histogram_merge_min_max_and_tail_quantiles():
    a, b = Histogram(), Histogram()
    for v in range(10, 20):
        a.observe(v)
    b.observe(2)
    b.observe(1_000_000)
    a.merge(b)
    assert a.min == 2
    assert a.max == 1_000_000
    # Tail quantiles stay clamped to the observed range after a merge.
    assert a.quantile(0.999) <= a.max
    assert a.quantile(0.5) >= a.min
    assert a.quantile(0.999) >= a.quantile(0.5)


def test_histogram_merge_into_empty_and_with_empty():
    a, b = Histogram(), Histogram()
    b.observe(42)
    a.merge(b)
    assert (a.count, a.min, a.max) == (1, 42, 42)
    a.merge(Histogram())  # merging an empty histogram is a no-op
    assert (a.count, a.min, a.max) == (1, 42, 42)


def test_histogram_from_dict_roundtrip():
    h = Histogram()
    for v in (0, 1, 2, 17, 300, 40_000, 7_000_000):
        h.observe(v)
    back = Histogram.from_dict(h.as_dict())
    assert back.as_dict() == h.as_dict()
    assert back.quantile(0.99) == h.quantile(0.99)


# ---------------------------------------------------------------------------
# WallClockStats — the master-side cluster store
# ---------------------------------------------------------------------------
def test_wallclock_counters_and_per_node_histograms():
    w = WallClockStats()
    w.inc("net.frames", 0)
    w.inc("net.frames", 0)
    w.inc("net.frames", 1)
    w.observe("net.rtt_ns", 0, 1000)
    w.observe("net.rtt_ns", 1, 3000)
    assert w.counter_total("net.frames") == 3
    assert w.nodes() == [0, 1]
    merged = w.histogram("net.rtt_ns")
    assert merged.count == 2
    assert merged.min == 1000 and merged.max == 3000


def test_wallclock_set_counter_replaces_not_accumulates():
    w = WallClockStats()
    # Workers ship *cumulative* values; re-ingesting must not double.
    w.set_counter("worker.frames", 0, 10)
    w.set_counter("worker.frames", 0, 25)
    assert w.counter_total("worker.frames") == 25


def test_wallclock_set_hist_replaces_per_node_then_merges():
    w = WallClockStats()
    h1 = Histogram()
    h1.observe(5)
    w.set_hist("worker.lag_ns", 0, h1.as_dict())
    h2 = Histogram()
    h2.observe(5)
    h2.observe(9)
    w.set_hist("worker.lag_ns", 0, h2.as_dict())  # cumulative re-ship
    h3 = Histogram()
    h3.observe(100)
    w.set_hist("worker.lag_ns", 1, h3.as_dict())
    merged = w.histogram("worker.lag_ns")
    assert merged.count == 3  # node 0's replace took, node 1 added
    assert merged.max == 100


def test_wallclock_sample_dedups_sim_time_and_is_bounded():
    w = WallClockStats()
    w.sample(100)
    w.sample(100)  # duplicate sim instant: dropped
    w.sample(200)
    assert [s for s, _ in w.samples] == [100, 200]
    doc = w.as_dict()
    assert doc["samples"] == 2
    assert doc["wall_elapsed_ns"] >= 0


def test_wallclock_by_node_compact_view():
    w = WallClockStats()
    w.set_counter("worker.frames", 2, 7)
    w.observe("net.rtt_ns", 2, 4096)
    view = w.by_node()
    assert view["2"]["worker.frames"] == 7
    assert view["2"]["net.rtt_ns"]["count"] == 1
    assert view["2"]["net.rtt_ns"]["max"] == 4096


# ---------------------------------------------------------------------------
# Flight recorder ring + dump format
# ---------------------------------------------------------------------------
def test_flight_ring_is_bounded_and_keeps_latest():
    fr = FlightRecorder(0, maxlen=4)
    for i in range(10):
        fr.record("evt", sim_ns=i)
    assert len(fr) == 4
    assert [e["sim_ns"] for e in fr.snapshot()] == [6, 7, 8, 9]
    assert all(e["kind"] == "evt" and e["wall_ns"] > 0
               for e in fr.snapshot())


def test_flight_dump_build_write_validate_roundtrip(tmp_path):
    fr = FlightRecorder(1, maxlen=8)
    fr.record("dsm.fetch", sim_ns=10, gid=7)
    doc = build_dump("test", {"why": "unit"},
                     {1: {"events": fr.snapshot(), "worker_events": []}},
                     sim_ns=123, backend="sim")
    assert doc["flight"] == FLIGHT_SCHEMA
    assert validate_flight_dump(doc) == []
    path = write_dump(doc, str(tmp_path))
    loaded = json.loads(open(path).read())
    assert loaded == doc
    assert validate_flight_dump(loaded) == []


@pytest.mark.parametrize("breakage", [
    lambda d: d.pop("reason"),
    lambda d: d.__setitem__("sim_ns", "not-an-int"),
    lambda d: d.__setitem__("nodes", []),
    lambda d: d["nodes"]["1"]["events"].append({"kind": "x"}),
])
def test_flight_validate_catches_malformed_documents(breakage):
    fr = FlightRecorder(1, maxlen=8)
    fr.record("evt", sim_ns=1)
    doc = build_dump("test", {}, {1: {"events": fr.snapshot(),
                                      "worker_events": []}},
                     sim_ns=0, backend="sim")
    breakage(doc)
    assert validate_flight_dump(doc) != []


# ---------------------------------------------------------------------------
# Passivity: the knobs observe wall time, they never move sim behavior
# ---------------------------------------------------------------------------
def _run(app="series", **overrides):
    config = RuntimeConfig(num_nodes=3, seed=0, **overrides)
    rewritten = rewrite_application(compile_source(app_source(app)))
    runtime = JavaSplitRuntime(rewritten, config)
    return runtime, runtime.run()


def test_wallclock_knob_does_not_move_deterministic_observables():
    _, plain = _run()
    runtime, observed = _run(obs_wallclock=True, obs_flight_recorder=True)
    assert observed.result == plain.result
    assert observed.simulated_ns == plain.simulated_ns
    assert observed.net.messages == plain.net.messages
    assert observed.net.bytes == plain.net.bytes
    assert observed.net.by_type == plain.net.by_type
    assert sorted(observed.console) == sorted(plain.console)
    # ...and the observation plane actually observed something.
    wall = runtime.obs.wallclock
    assert wall is not None
    assert wall.samples, "expected sim/wall correlation samples"
    assert any(len(fr) for fr in runtime.obs.flight.values())


def test_flight_dump_on_oracle_violation():
    from repro.check.oracle import SingleCopyOracle

    config = RuntimeConfig(num_nodes=3, seed=0, obs_flight_recorder=True)
    rewritten = rewrite_application(compile_source(app_source("series")))
    runtime = JavaSplitRuntime(rewritten, config)
    oracle = SingleCopyOracle.attach(runtime)
    report = runtime.run()
    assert report.flight_dumps == []  # clean run: no dump
    oracle.report(0, "synthetic", "gid 5 mismatch")  # forced violation
    assert len(runtime.obs.flight_dumps) == 1
    doc = json.loads(open(runtime.obs.flight_dumps[0]).read())
    assert validate_flight_dump(doc) == []
    assert doc["reason"] == "violation"
    assert doc["detail"]["kind"] == "synthetic"
    # Dumps are one-shot per run — a violation storm produces one file.
    oracle.report(1, "synthetic", "again")
    assert len(runtime.obs.flight_dumps) == 1


def test_live_stats_lines_render_without_a_network():
    from repro.cli import _live_stats_lines

    runtime, _ = _run(obs_wallclock=True)
    runtime.obs.wallclock.set_counter("worker.frames", 0, 3)
    runtime.obs.wallclock.observe("net.rtt_ns", 1, 2048)
    lines = _live_stats_lines(runtime)
    assert any("worker.frames" in ln for ln in lines)
    assert any("net.rtt_ns" in ln for ln in lines)
    assert lines[0].startswith("-- live @ sim")


def test_wallclock_trace_lane_validates():
    from repro.obs.spans import validate_chrome_trace

    config = RuntimeConfig(num_nodes=3, seed=0, obs_spans=True,
                           obs_wallclock=True)
    rewritten = rewrite_application(compile_source(app_source("series")))
    runtime = JavaSplitRuntime(rewritten, config)
    runtime.run()
    obs = runtime.obs
    doc = obs.spans.to_chrome_trace(wall_samples=obs.wallclock.samples)
    assert validate_chrome_trace(doc) == []
    lanes = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert lanes and all(e["name"] == "wallclock_ms" for e in lanes)
