"""Tests for the §4.3 extension: array-region coherency units.

"Although currently we treat each array as a single coherency unit, in
the future we plan to divide big arrays into several coherency units."
``DsmConfig(array_region_elems=N)`` turns the plan on.
"""

import pytest

from repro.dsm import DsmConfig
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig, run_original

BLOCK_SUM = """
class Work {
    int[] data;
    int lo;
    int hi;
    int result;
    Work(int[] d, int lo, int hi) { data = d; this.lo = lo; this.hi = hi; }
}
class Summer extends Thread {
    Work w;
    Summer(Work w) { this.w = w; }
    void run() {
        int s = 0;
        for (int i = w.lo; i < w.hi; i++) { s += w.data[i]; }
        w.result = s;
    }
}
class Main {
    static int main() {
        int n = 256;
        int[] data = new int[n];
        for (int i = 0; i < n; i++) { data[i] = i; }
        int k = 4;
        Summer[] ts = new Summer[k];
        for (int i = 0; i < k; i++) {
            ts[i] = new Summer(new Work(data, i * n / k, (i + 1) * n / k));
            ts[i].start();
        }
        int total = 0;
        for (int i = 0; i < k; i++) { ts[i].join(); total += ts[i].w.result; }
        return total;
    }
}
"""

BLOCK_WRITE = """
class Filler extends Thread {
    int[] data;
    int lo;
    int hi;
    Filler(int[] d, int lo, int hi) { data = d; this.lo = lo; this.hi = hi; }
    void run() {
        for (int i = lo; i < hi; i++) { data[i] = i * 2; }
    }
}
class Main {
    static int main() {
        int n = 200;
        int[] data = new int[n];
        int k = 4;
        Filler[] ts = new Filler[k];
        for (int i = 0; i < k; i++) {
            ts[i] = new Filler(data, i * n / k, (i + 1) * n / k);
            ts[i].start();
        }
        for (int i = 0; i < k; i++) { ts[i].join(); }
        int s = 0;
        for (int i = 0; i < n; i++) { s += data[i]; }
        return s;
    }
}
"""


def run_with_regions(src, nodes=4, region_elems=32):
    cfg = RuntimeConfig(
        num_nodes=nodes,
        dsm=DsmConfig(array_region_elems=region_elems),
    )
    return JavaSplitRuntime(
        rewrite_application(compile_source(src)), cfg
    ).run()


def test_region_reads_correct():
    base = run_original(source=BLOCK_SUM)
    rep = run_with_regions(BLOCK_SUM)
    assert rep.result == base.result == sum(range(256))
    assert rep.total_dsm().region_fetches > 0


def test_region_multiple_writers_merge():
    """Four threads write disjoint regions of one array: every write
    must survive the region-granular multiple-writer merge."""
    base = run_original(source=BLOCK_WRITE)
    rep = run_with_regions(BLOCK_WRITE)
    assert rep.result == base.result == sum(i * 2 for i in range(200))


@pytest.mark.parametrize("region_elems", [8, 32, 64, 1000])
def test_region_size_never_changes_result(region_elems):
    rep = run_with_regions(BLOCK_SUM, nodes=3, region_elems=region_elems)
    assert rep.result == sum(range(256))


def test_region_mode_fetches_less_data():
    """Block-partitioned readers fetch only their regions: bytes on the
    wire drop versus the whole-array coherency unit."""
    rewritten = rewrite_application(compile_source(BLOCK_SUM))
    whole = JavaSplitRuntime(
        rewritten, RuntimeConfig(num_nodes=4)
    ).run()
    rewritten2 = rewrite_application(compile_source(BLOCK_SUM))
    regioned = JavaSplitRuntime(
        rewritten2,
        RuntimeConfig(num_nodes=4, dsm=DsmConfig(array_region_elems=64)),
    ).run()
    assert regioned.result == whole.result
    assert regioned.total_dsm().fetch_bytes < whole.total_dsm().fetch_bytes


def test_small_arrays_stay_single_unit():
    src = """
    class T extends Thread {
        int[] a;
        T(int[] a) { this.a = a; }
        void run() { a[0] = 7; }
    }
    class Main {
        static int main() {
            int[] a = new int[4];   // below the region threshold
            T t = new T(a);
            t.start();
            t.join();
            return a[0];
        }
    }
    """
    rep = run_with_regions(src, nodes=2, region_elems=32)
    assert rep.result == 7
    assert rep.total_dsm().region_fetches == 0


def test_arraylength_on_remote_regioned_array():
    src = """
    class T extends Thread {
        int[] a;
        int len;
        T(int[] a) { this.a = a; }
        void run() { len = a.length; }
    }
    class Main {
        static int main() {
            int[] a = new int[100];
            T t = new T(a);
            t.start();
            t.join();
            return t.len;
        }
    }
    """
    rep = run_with_regions(src, nodes=2, region_elems=16)
    assert rep.result == 100


def test_regions_with_synchronized_counter_array():
    """Contended writes through a lock still coherent region-wise."""
    src = """
    class Lock { int unused; }
    class Incr extends Thread {
        int[] slots;
        Lock lock;
        int idx;
        Incr(int[] s, Lock l, int idx) { slots = s; lock = l; this.idx = idx; }
        void run() {
            for (int i = 0; i < 30; i++) {
                synchronized (lock) { slots[idx] += 1; }
            }
        }
    }
    class Main {
        static int main() {
            int[] slots = new int[64];
            Lock lock = new Lock();
            Incr[] ts = new Incr[4];
            for (int i = 0; i < 4; i++) {
                ts[i] = new Incr(slots, lock, i * 16);
                ts[i].start();
            }
            for (int i = 0; i < 4; i++) { ts[i].join(); }
            int s = 0;
            for (int i = 0; i < 64; i++) { s += slots[i]; }
            return s;
        }
    }
    """
    rep = run_with_regions(src, nodes=4, region_elems=16)
    assert rep.result == 120


def test_regions_compose_with_vector_mode():
    from repro.dsm import HLRC_BASELINE

    cfg = RuntimeConfig(
        num_nodes=3,
        dsm=DsmConfig(
            timestamp_mode="vector",
            notice_mode="full",
            array_region_elems=32,
        ),
    )
    rep = JavaSplitRuntime(
        rewrite_application(compile_source(BLOCK_WRITE)), cfg
    ).run()
    assert rep.result == sum(i * 2 for i in range(200))
