"""Focused type-checker tests (beyond the end-to-end compiler suite)."""

import pytest

from repro.lang import TypeError_, compile_source, parse
from repro.lang.types import ClassTable, check_program


def check(src):
    return check_program(parse(src))


def reject(src, match=None):
    with pytest.raises(TypeError_, match=match):
        compile_source(src)


# ---------------------------------------------------------------------------
# Class table
# ---------------------------------------------------------------------------
def test_class_table_contains_bootstrap():
    table = ClassTable()
    for name in ("Object", "Thread", "Math", "Sys", "String"):
        assert table.is_class(name)
    assert table.find_method("Thread", "start") is not None
    assert table.find_method("Thread", "wait") is not None  # inherited


def test_subclass_relation_transitive():
    table = check("class A { } class B extends A { } class C extends B { }")
    assert table.is_subclass("C", "A")
    assert table.is_subclass("C", "Object")
    assert not table.is_subclass("A", "C")


def test_duplicate_class_rejected():
    reject("class A { } class A { }", match="duplicate class")


def test_duplicate_method_rejected():
    reject("class A { void m() { } void m() { } }", match="duplicate method")


def test_field_resolution_walks_supers():
    table = check("""
    class Base { int x; }
    class Derived extends Base {
        int get() { return x; }
    }
    """)
    sig = table.find_field("Derived", "x")
    assert sig is not None and sig.declaring == "Base"


# ---------------------------------------------------------------------------
# Conversions and operators
# ---------------------------------------------------------------------------
def test_int_widens_in_args_and_return():
    compile_source("""
    class A {
        static double half(double x) { return x / 2.0; }
        static double main() { return half(7); }   // int arg widens
    }
    """)


def test_double_does_not_narrow_implicitly():
    reject("class A { static int main() { return 1.5; } }")
    reject("class A { static void main() { int x; x = 2.0; } }")


def test_null_assignable_to_refs_only():
    compile_source("class A { static void main() { String s = null; int[] a = null; A x = null; } }")
    reject("class A { static void main() { int x = null; } }")


def test_subtype_assignment():
    compile_source("""
    class Animal { }
    class Dog extends Animal { }
    class A {
        static void main() { Animal a = new Dog(); Object o = a; }
    }
    """)
    reject("""
    class Animal { }
    class Dog extends Animal { }
    class A { static void main() { Dog d = new Animal(); } }
    """)


def test_string_concat_typing():
    compile_source("""
    class A {
        static String main() { return "n=" + 1 + ", x=" + 2.5 + ", b=" + "s"; }
    }
    """)


def test_arithmetic_on_refs_rejected():
    reject("class A { static void main() { A x = new A(); A y = new A(); int z = 0; if (x < y) { z = 1; } } }")


def test_logical_ops_need_booleans():
    reject("class A { static void main() { boolean b = 1 && 2; } }")
    reject("class A { static void main() { boolean b = !3; } }")


def test_bitwise_needs_ints():
    reject("class A { static void main() { double d = 1.5 << 2; } }")


def test_comparisons_mixed_numeric_ok():
    compile_source("class A { static boolean main() { return 1 < 2.5; } }")


def test_ref_equality_needs_compatible_kinds():
    reject("class A { static boolean main() { return new A() == 3; } }")


# ---------------------------------------------------------------------------
# Statements and scoping
# ---------------------------------------------------------------------------
def test_for_scope_is_local_to_loop():
    compile_source("""
    class A {
        static int main() {
            int s = 0;
            for (int i = 0; i < 3; i++) { s += i; }
            for (int i = 9; i < 12; i++) { s += i; }   // re-declare OK
            return s;
        }
    }
    """)


def test_use_of_for_variable_outside_rejected():
    reject("""
    class A {
        static int main() {
            for (int i = 0; i < 3; i++) { }
            return i;
        }
    }
    """)


def test_block_scoping():
    compile_source("""
    class A {
        static int main() {
            { int x = 1; }
            { int x = 2; }
            return 0;
        }
    }
    """)


def test_shadowing_within_nested_scope_rejected():
    reject("""
    class A {
        static void main() {
            int x = 1;
            { int x = 2; }
        }
    }
    """)


def test_super_only_first_in_constructor():
    reject("""
    class B { B(int x) { } }
    class C extends B {
        C() { int y = 1; super(y); }
    }
    """, match="super")


def test_missing_explicit_super_args_rejected():
    # B has only a 1-arg ctor: C's implicit super() cannot resolve.
    with pytest.raises(Exception):
        compile_source("""
        class B { B(int x) { } }
        class C extends B { C() { } }
        """)


def test_return_paths_through_if_else():
    compile_source("""
    class A {
        static int main() {
            if (1 < 2) { return 1; } else { return 2; }
        }
    }
    """)
    compile_source("""
    class A {
        static int main() {
            while (true) { }
        }
    }
    """)


def test_void_method_cannot_return_value():
    reject("class A { static void main() { return 3; } }")


def test_array_index_must_be_int():
    reject("class A { static void main() { int[] a = new int[3]; a[1.5] = 1; } }")
    reject("class A { static void main() { int[] a = new int[2.0]; } }")


def test_array_length_not_assignable():
    reject("class A { static void main() { int[] a = new int[3]; a.length = 5; } }")


def test_instance_method_from_static_rejected():
    reject("""
    class A {
        int v;
        int get() { return v; }
        static int main() { return get(); }
    }
    """)


def test_static_method_via_instance_rejected():
    reject("""
    class A {
        static int f() { return 1; }
        static int main() { return new A().f(); }
    }
    """)


def test_cannot_instantiate_math_or_sys():
    reject("class A { static void main() { Math m = new Math(); } }")
    reject("class A { static void main() { Sys s = new Sys(); } }")


def test_can_instantiate_thread_and_object():
    compile_source("""
    class A {
        static void main() {
            Thread t = new Thread();
            Object o = new Object();
        }
    }
    """)


def test_volatile_fields_accepted():
    compile_source("""
    class F { volatile int flag; }
    class A { static int main() { F f = new F(); f.flag = 1; return f.flag; } }
    """)
