"""Benchmark-application correctness: distributed result == original."""

import math

import pytest

from repro.apps import raytracer, series, tsp
from repro.runtime import RuntimeConfig, run_distributed, run_original


def check_app(mod, nodes=2, config=None, **params):
    src = mod.make_source(**params)
    base = run_original(source=src)
    if config is None:
        dist = run_distributed(source=src, num_nodes=nodes)
    else:
        dist = run_distributed(source=src, config=config)
    assert dist.result == base.result
    return base, dist


# ---------------------------------------------------------------------------
# Series
# ---------------------------------------------------------------------------
def test_series_distributed_matches_original():
    check_app(series, nodes=2, n_coeffs=12, steps=16, n_threads=4)


def test_series_result_stable_across_node_counts():
    src = series.make_source(n_coeffs=12, steps=16, n_threads=4)
    results = {
        nodes: run_distributed(source=src, num_nodes=nodes).result
        for nodes in (1, 2, 4)
    }
    assert len(set(results.values())) == 1


def test_series_coefficients_against_numpy():
    """Cross-validate the MiniJava integration against a numpy trapezoid
    for a couple of coefficients."""
    src = series.make_source(n_coeffs=4, steps=64, n_threads=1)
    base = run_original(source=src)
    import numpy as np

    xs = np.linspace(0.0, 2.0, 65)
    f = np.exp(xs * np.log(xs + 1.0))
    check = 0.0
    for k in range(4):
        w = math.pi * k
        a = np.trapezoid(f * np.cos(w * xs), xs) * 0.5
        b = np.trapezoid(f * np.sin(w * xs), xs) * 0.5
        check += abs(a) + abs(b)
    assert base.result == int(check * 1000)


def test_series_thread_count_does_not_change_result():
    r = {}
    for k in (1, 2, 3, 6):
        src = series.make_source(n_coeffs=12, steps=16, n_threads=k)
        r[k] = run_original(source=src).result
    assert len(set(r.values())) == 1


def test_series_param_validation():
    with pytest.raises(ValueError):
        series.make_source(n_coeffs=2, n_threads=4)


# ---------------------------------------------------------------------------
# TSP
# ---------------------------------------------------------------------------
def _brute_force_tsp(n, seed):
    """Independent Python reimplementation of the tour length."""
    import itertools

    s = seed
    xs, ys = [], []

    def lcg(s):
        s = (s * 1103515245 + 12345) % 2147483648
        return s if s >= 0 else -s

    for _ in range(n):
        s = lcg(s)
        xs.append(s % 1000)
        s = lcg(s)
        ys.append(s % 1000)
    dist = [[int(math.sqrt((xs[i] - xs[j]) ** 2 + (ys[i] - ys[j]) ** 2))
             for j in range(n)] for i in range(n)]
    best = None
    for perm in itertools.permutations(range(1, n)):
        tour = (0,) + perm
        length = sum(
            dist[tour[i]][tour[i + 1]] for i in range(n - 1)
        ) + dist[tour[-1]][0]
        best = length if best is None else min(best, length)
    return best


def test_tsp_finds_true_minimum():
    base = run_original(source=tsp.make_source(n_cities=7, n_threads=2))
    assert base.result == _brute_force_tsp(7, tsp.DEFAULT_SEED)


def test_tsp_distributed_matches_original():
    check_app(tsp, nodes=3, n_cities=7, n_threads=3)


def test_tsp_stale_bound_reads_still_give_minimum():
    """The unsynchronized bound read is the interesting DSM behaviour:
    across several cluster layouts the minimum must be identical."""
    src = tsp.make_source(n_cities=7, n_threads=4)
    expected = _brute_force_tsp(7, tsp.DEFAULT_SEED)
    for nodes in (1, 2, 4):
        assert run_distributed(source=src, num_nodes=nodes).result == expected


def test_tsp_different_seeds_different_tours():
    a = run_original(source=tsp.make_source(n_cities=7, seed=1)).result
    b = run_original(source=tsp.make_source(n_cities=7, seed=2)).result
    assert a != b  # overwhelmingly likely for random instances


def test_tsp_param_validation():
    with pytest.raises(ValueError):
        tsp.make_source(n_cities=2)


# ---------------------------------------------------------------------------
# Ray Tracer
# ---------------------------------------------------------------------------
def test_raytracer_distributed_matches_original():
    check_app(raytracer, nodes=2, resolution=8, n_threads=4, n_spheres=8)


def test_raytracer_row_distribution_invariant():
    """Checksum must not depend on how rows are split across threads."""
    results = {}
    for k in (1, 2, 4, 8):
        src = raytracer.make_source(resolution=8, n_threads=k, n_spheres=8)
        results[k] = run_original(source=src).result
    assert len(set(results.values())) == 1


def test_raytracer_hits_some_spheres():
    """The checksum must exceed the pure-background value."""
    res = 8
    src = raytracer.make_source(resolution=res, n_threads=1, n_spheres=64)
    result = run_original(source=src).result
    background = res * res * int(0.05 * 255)
    assert result > background


def test_raytracer_statics_profile():
    """After rewriting, the scene accesses go through the static holder
    (the paper calls Ray Tracer its static-access-heavy benchmark)."""
    from repro.lang import compile_source
    from repro.rewriter import rewrite_application

    src = raytracer.make_source(resolution=8, n_threads=2, n_spheres=8)
    rewritten = rewrite_application(compile_source(src))
    assert rewritten.stats["static_accesses"] > 20
    assert "javasplit.Scene" in rewritten.static_gids


def test_raytracer_mixed_brands():
    src = raytracer.make_source(resolution=8, n_threads=4, n_spheres=8)
    base = run_original(source=src)
    cfg = RuntimeConfig(num_nodes=2, brands=["sun", "ibm"])
    dist = run_distributed(source=src, config=cfg)
    assert dist.result == base.result


def test_raytracer_param_validation():
    with pytest.raises(ValueError):
        raytracer.make_source(resolution=2, n_threads=4)
