"""DsmTracer unit + wiring coverage: event recording, the max-events
cap and its dropped counter, filtering/summary/export helpers, and the
attach() idempotency guarantee (a double attach must not double-wrap
``transport.send`` and double-record every message)."""

from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig
from repro.runtime.tracing import DsmTracer, TraceEvent

TWO_NODE_SRC = """
class Counter { int v; }
class W extends Thread {
    Counter c;
    W(Counter c) { this.c = c; }
    void run() { synchronized (c) { c.v += 1; } }
}
class Main {
    static int main() {
        Counter c = new Counter();
        W a = new W(c); W b = new W(c);
        a.start(); b.start(); a.join(); b.join();
        return c.v;
    }
}
"""


def _runtime(**cfg):
    rewritten = rewrite_application(compile_source(TWO_NODE_SRC))
    cfg.setdefault("scheduler", "round-robin")
    return JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=2, **cfg))


# ---------------------------------------------------------------------------
# Recording, cap, dropped
# ---------------------------------------------------------------------------
def test_record_and_len():
    tr = DsmTracer()
    tr.record(1000, 0, "dsm.fetch", "gid=1")
    tr.record(2000, 1, "dsm.token", "gid=1")
    assert len(tr) == 2
    assert tr.events[0] == TraceEvent(1000, 0, "dsm.fetch", "gid=1")
    assert not tr.truncated
    assert tr.dropped == 0


def test_limit_drops_and_counts():
    tr = DsmTracer()
    tr._limit = 2
    for i in range(5):
        tr.record(i, 0, "k", str(i))
    assert len(tr) == 2
    assert tr.dropped == 3
    assert tr.truncated
    # The retained prefix is the earliest events, in order.
    assert [e.detail for e in tr.events] == ["0", "1"]


def test_events_of_type_and_counts():
    tr = DsmTracer()
    tr.record(0, 0, "a", "x")
    tr.record(1, 0, "b", "y")
    tr.record(2, 1, "a", "z")
    assert [e.detail for e in tr.events_of_type("a")] == ["x", "z"]
    assert tr.events_of_type("missing") == []
    assert tr.counts() == {"a": 2, "b": 1}


def test_summary_includes_truncated_dropped_only_when_truncated():
    tr = DsmTracer()
    tr.record(0, 0, "a", "x")
    assert "truncated_dropped" not in tr.summary()
    tr._limit = 1
    tr.record(1, 0, "a", "y")
    assert tr.summary() == {"a": 1, "truncated_dropped": 1}


def test_as_dicts_and_format():
    tr = DsmTracer()
    tr.record(1_500_000, 1, "dsm.diff", "-> n0 (64B)")
    assert tr.as_dicts() == [{
        "time_ns": 1_500_000, "node": 1, "kind": "dsm.diff",
        "detail": "-> n0 (64B)",
    }]
    text = tr.format()
    assert "dsm.diff" in text and "n1" in text
    assert "truncated" not in text
    tr._limit = 1
    tr.record(2_000_000, 0, "dsm.token", "gid=1")
    assert "truncated" in tr.format()
    # kind filter + tail limit
    assert tr.format(kind="nope").startswith("... trace truncated")


# ---------------------------------------------------------------------------
# attach(): wiring + idempotency
# ---------------------------------------------------------------------------
def test_attach_records_protocol_traffic():
    rt = _runtime()
    tracer = DsmTracer.attach(rt)
    report = rt.run()
    assert report.result == 2
    assert len(tracer) > 0
    assert tracer.events_of_type("promote")   # Counter + thread promoted
    # Every send-type event carries its destination and byte count.
    sends = [e for e in tracer.events if e.detail.startswith("-> n")]
    assert sends


def test_attach_is_idempotent_per_runtime():
    rt = _runtime()
    tracer = DsmTracer.attach(rt, max_events=100)
    again = DsmTracer.attach(rt)
    assert again is tracer
    report = rt.run()
    assert report.result == 2
    # A double attach used to wrap transport.send twice and record every
    # message twice; with the guard each message appears exactly once,
    # so counts match the NetStats total.
    sends = [e for e in tracer.events if e.detail.startswith("-> n")]
    assert len(sends) == report.net.messages


def test_attach_updates_limit_on_reattach():
    rt = _runtime()
    tracer = DsmTracer.attach(rt, max_events=100)
    DsmTracer.attach(rt, max_events=3)
    assert tracer._limit == 3
    rt.run()
    assert len(tracer) == 3
    assert tracer.truncated


def test_separate_runtimes_get_separate_tracers():
    rt_a, rt_b = _runtime(), _runtime()
    tr_a = DsmTracer.attach(rt_a)
    tr_b = DsmTracer.attach(rt_b)
    assert tr_a is not tr_b
