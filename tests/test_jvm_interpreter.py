"""Interpreter unit tests: arithmetic, control flow, heap, invocation."""

import math

import pytest

from repro.jvm import (
    ArithmeticJavaError,
    ArrayIndexError,
    ClassBuilder,
    ClassCastError,
    NullPointerError,
    Op,
)
from repro.jvm.interpreter import java_ddiv, java_idiv, java_irem, jstr

from conftest import run_main


def _main_class(body_fn, ret="int", name="Main", extra=None):
    """Build a class whose static main() body is emitted by body_fn(mb)."""
    cb = ClassBuilder(name)
    mb = cb.method("main", ret=ret, flags=["static"])
    body_fn(mb)
    cb.finish(mb)
    classes = [cb.build()]
    if extra:
        classes.extend(extra)
    return classes


def run_expr(body_fn, ret="int", **kw):
    classes = _main_class(body_fn, ret=ret)
    jvm, thread = run_main(classes, "Main", **kw)
    return thread.result


# ---------------------------------------------------------------------------
# Pure-Java semantics helpers
# ---------------------------------------------------------------------------
def test_java_idiv_truncates_toward_zero():
    assert java_idiv(7, 2) == 3
    assert java_idiv(-7, 2) == -3
    assert java_idiv(7, -2) == -3
    assert java_idiv(-7, -2) == 3


def test_java_idiv_by_zero():
    with pytest.raises(ArithmeticJavaError):
        java_idiv(1, 0)


def test_java_irem_sign_follows_dividend():
    assert java_irem(7, 3) == 1
    assert java_irem(-7, 3) == -1
    assert java_irem(7, -3) == 1


def test_java_ddiv_never_traps():
    assert java_ddiv(1.0, 0.0) == math.inf
    assert math.isnan(java_ddiv(0.0, 0.0))


def test_jstr_formats():
    assert jstr(None) == "null"
    assert jstr(3) == "3"
    assert jstr(1.0) == "1.0"
    assert jstr(1.5) == "1.5"
    assert jstr("x") == "x"


# ---------------------------------------------------------------------------
# Arithmetic & stack
# ---------------------------------------------------------------------------
def test_int_arith():
    def body(mb):
        mb.const(10); mb.const(3)
        mb.emit(Op.MUL)          # 30
        mb.const(4)
        mb.emit(Op.SUB)          # 26
        mb.const(5)
        mb.emit(Op.REM)          # 1
        mb.retval()
    assert run_expr(body) == 1


def test_int_div_truncation_in_bytecode():
    def body(mb):
        mb.const(-7); mb.const(2)
        mb.emit(Op.DIV)
        mb.retval()
    assert run_expr(body) == -3


def test_double_arith_and_conversion():
    def body(mb):
        mb.const(7)
        mb.emit(Op.I2D)
        mb.const(2.0)
        mb.emit(Op.DIV)          # 3.5
        mb.emit(Op.D2I)          # 3
        mb.retval()
    assert run_expr(body) == 3


def test_d2i_truncates_toward_zero():
    def body(mb):
        mb.const(-3.7)
        mb.emit(Op.D2I)
        mb.retval()
    assert run_expr(body) == -3


def test_bitwise_ops():
    def body(mb):
        mb.const(0b1100); mb.const(0b1010)
        mb.emit(Op.AND)          # 0b1000
        mb.const(1)
        mb.emit(Op.SHL)          # 0b10000
        mb.const(0b1)
        mb.emit(Op.OR)           # 0b10001
        mb.retval()
    assert run_expr(body) == 0b10001


def test_neg_and_cmp():
    def body(mb):
        mb.const(2.0); mb.const(3.0)
        mb.emit(Op.CMP)          # -1
        mb.emit(Op.NEG)          # 1
        mb.retval()
    assert run_expr(body) == 1


def test_stack_ops():
    def body(mb):
        mb.const(1); mb.const(2)
        mb.emit(Op.SWAP)         # 2,1
        mb.emit(Op.SUB)          # 1
        mb.emit(Op.DUP)
        mb.emit(Op.ADD)          # 2
        mb.retval()
    assert run_expr(body) == 2


def test_dup_x1():
    def body(mb):
        mb.const(5); mb.const(7)
        mb.emit(Op.DUP_X1)       # 7,5,7
        mb.emit(Op.ADD)          # 7,12
        mb.emit(Op.SUB)          # -5
        mb.retval()
    assert run_expr(body) == -5


def test_concat_stringifies():
    def body(mb):
        mb.const("x="); mb.const(42)
        mb.emit(Op.CONCAT)
        mb.retval()
    assert run_expr(body, ret="str") == "x=42"


# ---------------------------------------------------------------------------
# Control flow & locals
# ---------------------------------------------------------------------------
def test_loop_sum():
    def body(mb):
        i = mb.alloc_local()
        acc = mb.alloc_local()
        mb.const(0); mb.store(i)
        mb.const(0); mb.store(acc)
        top = mb.label(); done = mb.label()
        mb.mark(top)
        mb.load(i); mb.const(10)
        mb.if_cmp("ge", done)
        mb.load(acc); mb.load(i)
        mb.emit(Op.ADD); mb.store(acc)
        mb.emit(Op.IINC, i, 1)
        mb.goto(top)
        mb.mark(done)
        mb.load(acc)
        mb.retval()
    assert run_expr(body) == 45


def test_if_conditions_against_zero():
    for cond, value, expected in [
        ("eq", 0, 1), ("eq", 5, 0), ("ne", 5, 1),
        ("lt", -1, 1), ("ge", 0, 1), ("gt", 1, 1), ("le", 2, 0),
    ]:
        def body(mb, cond=cond, value=value):
            taken = mb.label(); end = mb.label()
            mb.const(value)
            mb.if_(cond, taken)
            mb.const(0); mb.goto(end)
            mb.mark(taken)
            mb.const(1)
            mb.mark(end)
            mb.retval()
        assert run_expr(body) == expected, (cond, value)


def test_iinc_negative():
    def body(mb):
        i = mb.alloc_local()
        mb.const(10); mb.store(i)
        mb.emit(Op.IINC, i, -3)
        mb.load(i)
        mb.retval()
    assert run_expr(body) == 7


# ---------------------------------------------------------------------------
# Objects, fields, inheritance
# ---------------------------------------------------------------------------
def _point_class():
    cb = ClassBuilder("Point")
    cb.field("x", "int")
    cb.field("y", "int")
    init = cb.method("<init>", params=["int", "int"])
    init.load(0)
    init.invoke(Op.INVOKESPECIAL, "Object", "<init>")
    init.load(0); init.load(1)
    init.emit(Op.PUTFIELD, "Point", "x")
    init.load(0); init.load(2)
    init.emit(Op.PUTFIELD, "Point", "y")
    init.ret()
    cb.finish(init)
    s = cb.method("sum", ret="int")
    s.load(0); s.emit(Op.GETFIELD, "Point", "x")
    s.load(0); s.emit(Op.GETFIELD, "Point", "y")
    s.emit(Op.ADD)
    s.retval()
    cb.finish(s)
    return cb.build()


def test_object_construction_and_fields():
    def body(mb):
        mb.emit(Op.NEW, "Point")
        mb.emit(Op.DUP)
        mb.const(3); mb.const(4)
        mb.invoke(Op.INVOKESPECIAL, "Point", "<init>")
        mb.invoke(Op.INVOKEVIRTUAL, "Point", "sum")
        mb.retval()
    classes = _main_class(body, extra=[_point_class()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 7


def test_virtual_dispatch_uses_dynamic_type():
    base = ClassBuilder("Base")
    init = base.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>"); init.ret()
    base.finish(init)
    m = base.method("value", ret="int")
    m.const(1); m.retval()
    base.finish(m)

    sub = ClassBuilder("Sub", super_name="Base")
    init = sub.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Base", "<init>"); init.ret()
    sub.finish(init)
    m = sub.method("value", ret="int")
    m.const(2); m.retval()
    sub.finish(m)

    def body(mb):
        mb.emit(Op.NEW, "Sub")
        mb.emit(Op.DUP)
        mb.invoke(Op.INVOKESPECIAL, "Sub", "<init>")
        # Static type Base, dynamic type Sub: must return 2.
        mb.invoke(Op.INVOKEVIRTUAL, "Base", "value")
        mb.retval()

    classes = _main_class(body, extra=[base.build(), sub.build()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 2


def test_inherited_field_layout_shared():
    base = ClassBuilder("B2")
    base.field("a", "int", init=10)
    init = base.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>"); init.ret()
    base.finish(init)

    sub = ClassBuilder("S2", super_name="B2")
    sub.field("b", "int", init=20)
    init = sub.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "B2", "<init>"); init.ret()
    sub.finish(init)

    def body(mb):
        mb.emit(Op.NEW, "S2")
        mb.emit(Op.DUP)
        mb.invoke(Op.INVOKESPECIAL, "S2", "<init>")
        mb.emit(Op.DUP)
        mb.emit(Op.GETFIELD, "B2", "a")    # access via superclass name
        mb.emit(Op.SWAP)
        mb.emit(Op.GETFIELD, "S2", "b")
        mb.emit(Op.ADD)
        mb.retval()

    classes = _main_class(body, extra=[base.build(), sub.build()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 30


def test_statics():
    cb = ClassBuilder("Counter")
    cb.field("count", "int", is_static=True, init=5)

    def body(mb):
        mb.emit(Op.GETSTATIC, "Counter", "count")
        mb.const(1)
        mb.emit(Op.ADD)
        mb.emit(Op.PUTSTATIC, "Counter", "count")
        mb.emit(Op.GETSTATIC, "Counter", "count")
        mb.retval()

    classes = _main_class(body, extra=[cb.build()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 6


def test_instanceof_and_checkcast():
    base = ClassBuilder("B3")
    init = base.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>"); init.ret()
    base.finish(init)

    def body(mb):
        mb.emit(Op.NEW, "B3")
        mb.emit(Op.DUP)
        mb.invoke(Op.INVOKESPECIAL, "B3", "<init>")
        mb.emit(Op.CHECKCAST, "Object")   # upcast fine
        mb.emit(Op.INSTANCEOF, "B3")
        mb.retval()

    classes = _main_class(body, extra=[base.build()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 1


def test_bad_cast_raises():
    a = ClassBuilder("CA")
    init = a.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>"); init.ret()
    a.finish(init)
    b = ClassBuilder("CB")
    init = b.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>"); init.ret()
    b.finish(init)

    def body(mb):
        mb.emit(Op.NEW, "CA")
        mb.emit(Op.DUP)
        mb.invoke(Op.INVOKESPECIAL, "CA", "<init>")
        mb.emit(Op.CHECKCAST, "CB")
        mb.const(0)
        mb.retval()

    classes = _main_class(body, extra=[a.build(), b.build()])
    with pytest.raises(ClassCastError):
        run_main(classes, "Main")


def test_null_getfield_raises():
    def body(mb):
        mb.const(None)
        mb.emit(Op.GETFIELD, "Point", "x")
        mb.retval()
    classes = _main_class(body, extra=[_point_class()])
    with pytest.raises(NullPointerError):
        run_main(classes, "Main")


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------
def test_array_create_store_load_length():
    def body(mb):
        arr = mb.alloc_local()
        mb.const(5)
        mb.emit(Op.NEWARRAY, "int")
        mb.store(arr)
        mb.load(arr); mb.const(2); mb.const(42)
        mb.emit(Op.ARRSTORE)
        mb.load(arr); mb.const(2)
        mb.emit(Op.ARRLOAD)
        mb.load(arr)
        mb.emit(Op.ARRAYLENGTH)
        mb.emit(Op.ADD)
        mb.retval()
    assert run_expr(body) == 47


def test_array_default_values():
    def body(mb):
        mb.const(3)
        mb.emit(Op.NEWARRAY, "double")
        mb.const(1)
        mb.emit(Op.ARRLOAD)
        mb.retval()
    assert run_expr(body, ret="double") == 0.0


def test_array_bounds_raise():
    def body(mb):
        mb.const(3)
        mb.emit(Op.NEWARRAY, "int")
        mb.const(3)
        mb.emit(Op.ARRLOAD)
        mb.retval()
    with pytest.raises(ArrayIndexError):
        run_expr(body)


def test_ref_array_holds_objects():
    def body(mb):
        arr = mb.alloc_local()
        mb.const(2)
        mb.emit(Op.NEWARRAY, "Point")
        mb.store(arr)
        mb.load(arr); mb.const(0)
        mb.emit(Op.NEW, "Point")
        mb.emit(Op.DUP)
        mb.const(1); mb.const(2)
        mb.invoke(Op.INVOKESPECIAL, "Point", "<init>")
        mb.emit(Op.ARRSTORE)
        mb.load(arr); mb.const(0)
        mb.emit(Op.ARRLOAD)
        mb.invoke(Op.INVOKEVIRTUAL, "Point", "sum")
        mb.retval()
    classes = _main_class(body, extra=[_point_class()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 3


# ---------------------------------------------------------------------------
# Natives: Math, Sys, String
# ---------------------------------------------------------------------------
def test_math_sqrt():
    def body(mb):
        mb.const(16.0)
        mb.invoke(Op.INVOKESTATIC, "Math", "sqrt")
        mb.retval()
    assert run_expr(body, ret="double") == 4.0


def test_math_pow_and_imax():
    def body(mb):
        mb.const(2.0); mb.const(10.0)
        mb.invoke(Op.INVOKESTATIC, "Math", "pow")
        mb.emit(Op.D2I)
        mb.const(99)
        mb.invoke(Op.INVOKESTATIC, "Math", "imax")
        mb.retval()
    assert run_expr(body) == 1024


def test_sys_print_collects_output():
    def body(mb):
        mb.const("hello ")
        mb.const(7)
        mb.emit(Op.CONCAT)
        mb.invoke(Op.INVOKESTATIC, "Sys", "print")
        mb.const(0)
        mb.retval()
    classes = _main_class(body)
    jvm, thread = run_main(classes, "Main")
    assert jvm.output == ["hello 7"]


def test_string_methods():
    def body(mb):
        mb.const("hello")
        mb.invoke(Op.INVOKEVIRTUAL, "String", "length")
        mb.const("hello")
        mb.const(1)
        mb.invoke(Op.INVOKEVIRTUAL, "String", "charAt")
        mb.emit(Op.ADD)
        mb.retval()
    assert run_expr(body) == 5 + ord("e")


def test_method_with_params_static():
    cb = ClassBuilder("Util")
    m = cb.method("add3", params=["int", "int", "int"], ret="int", flags=["static"])
    m.load(0); m.load(1); m.emit(Op.ADD)
    m.load(2); m.emit(Op.ADD)
    m.retval()
    cb.finish(m)

    def body(mb):
        mb.const(1); mb.const(2); mb.const(3)
        mb.invoke(Op.INVOKESTATIC, "Util", "add3")
        mb.retval()

    classes = _main_class(body, extra=[cb.build()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 6


def test_recursion():
    cb = ClassBuilder("Fib")
    m = cb.method("fib", params=["int"], ret="int", flags=["static"])
    base = m.label()
    m.load(0); m.const(2)
    m.if_cmp("lt", base)
    m.load(0); m.const(1); m.emit(Op.SUB)
    m.invoke(Op.INVOKESTATIC, "Fib", "fib")
    m.load(0); m.const(2); m.emit(Op.SUB)
    m.invoke(Op.INVOKESTATIC, "Fib", "fib")
    m.emit(Op.ADD)
    m.retval()
    m.mark(base)
    m.load(0)
    m.retval()
    cb.finish(m)

    def body(mb):
        mb.const(12)
        mb.invoke(Op.INVOKESTATIC, "Fib", "fib")
        mb.retval()

    classes = _main_class(body, extra=[cb.build()])
    jvm, thread = run_main(classes, "Main")
    assert thread.result == 144
