"""Threads, monitors, wait/notify in plain (un-instrumented) execution."""

import pytest

from repro.jvm import ClassBuilder, IllegalMonitorStateError, JavaRuntimeError, Op

from conftest import run_main


def _worker_class(name="Worker", body=None):
    """A Thread subclass whose run() increments a shared Cell under lock."""
    cb = ClassBuilder(name, super_name="Thread")
    cb.field("cell", "Cell")
    cb.field("reps", "int")
    init = cb.method("<init>", params=["Cell", "int"])
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Thread", "<init>")
    init.load(0); init.load(1)
    init.emit(Op.PUTFIELD, name, "cell")
    init.load(0); init.load(2)
    init.emit(Op.PUTFIELD, name, "reps")
    init.ret()
    cb.finish(init)

    run = cb.method("run")
    i = run.alloc_local()
    run.const(0); run.store(i)
    top = run.label(); done = run.label()
    run.mark(top)
    run.load(i); run.load(0); run.emit(Op.GETFIELD, name, "reps")
    run.if_cmp("ge", done)
    # synchronized(cell) { cell.value += 1 }
    run.load(0); run.emit(Op.GETFIELD, name, "cell")
    run.emit(Op.MONITORENTER)
    run.load(0); run.emit(Op.GETFIELD, name, "cell")
    run.emit(Op.DUP)
    run.emit(Op.GETFIELD, "Cell", "value")
    run.const(1); run.emit(Op.ADD)
    run.emit(Op.PUTFIELD, "Cell", "value")
    run.load(0); run.emit(Op.GETFIELD, name, "cell")
    run.emit(Op.MONITOREXIT)
    run.emit(Op.IINC, i, 1)
    run.goto(top)
    run.mark(done)
    run.ret()
    cb.finish(run)
    return cb.build()


def _cell_class():
    cb = ClassBuilder("Cell")
    cb.field("value", "int")
    init = cb.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>")
    init.ret()
    cb.finish(init)
    return cb.build()


def _spawn_main(num_threads, reps):
    """main: create Cell, spawn workers, join all, return cell.value."""
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    cell = mb.alloc_local()
    arr = mb.alloc_local()
    i = mb.alloc_local()
    mb.emit(Op.NEW, "Cell"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Cell", "<init>")
    mb.store(cell)
    mb.const(num_threads); mb.emit(Op.NEWARRAY, "Worker"); mb.store(arr)
    # spawn loop
    mb.const(0); mb.store(i)
    top = mb.label(); done = mb.label()
    mb.mark(top)
    mb.load(i); mb.const(num_threads); mb.if_cmp("ge", done)
    mb.load(arr); mb.load(i)
    mb.emit(Op.NEW, "Worker"); mb.emit(Op.DUP)
    mb.load(cell); mb.const(reps)
    mb.invoke(Op.INVOKESPECIAL, "Worker", "<init>")
    mb.emit(Op.ARRSTORE)
    mb.load(arr); mb.load(i); mb.emit(Op.ARRLOAD)
    mb.invoke(Op.INVOKEVIRTUAL, "Worker", "start")
    mb.emit(Op.IINC, i, 1)
    mb.goto(top)
    mb.mark(done)
    # join loop
    mb.const(0); mb.store(i)
    top2 = mb.label(); done2 = mb.label()
    mb.mark(top2)
    mb.load(i); mb.const(num_threads); mb.if_cmp("ge", done2)
    mb.load(arr); mb.load(i); mb.emit(Op.ARRLOAD)
    mb.invoke(Op.INVOKEVIRTUAL, "Worker", "join")
    mb.emit(Op.IINC, i, 1)
    mb.goto(top2)
    mb.mark(done2)
    mb.load(cell)
    mb.emit(Op.GETFIELD, "Cell", "value")
    mb.retval()
    cb.finish(mb)
    return cb.build()


def test_monitor_protects_counter_across_threads():
    classes = [_cell_class(), _worker_class(), _spawn_main(4, 200)]
    jvm, thread = run_main(classes, "Main", cpus=2)
    assert thread.result == 800
    assert jvm.node.finished_streams == 5  # main + 4 workers


def test_single_thread_monitor_reentrancy():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    o = mb.alloc_local()
    mb.emit(Op.NEW, "Cell"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Cell", "<init>")
    mb.store(o)
    mb.load(o); mb.emit(Op.MONITORENTER)
    mb.load(o); mb.emit(Op.MONITORENTER)   # re-entrant
    mb.load(o); mb.emit(Op.MONITOREXIT)
    mb.load(o); mb.emit(Op.MONITOREXIT)
    mb.const(1)
    mb.retval()
    cb.finish(mb)
    jvm, thread = run_main([_cell_class(), cb.build()], "Main")
    assert thread.result == 1


def test_monitorexit_by_non_owner_raises():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    mb.emit(Op.NEW, "Cell"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Cell", "<init>")
    mb.emit(Op.MONITOREXIT)
    mb.const(0); mb.retval()
    cb.finish(mb)
    with pytest.raises(IllegalMonitorStateError):
        run_main([_cell_class(), cb.build()], "Main")


def test_wait_notify_producer_consumer():
    """Producer sets flag and notifies; consumer waits for it."""
    cell = _cell_class()

    prod = ClassBuilder("Producer", super_name="Thread")
    prod.field("cell", "Cell")
    init = prod.method("<init>", params=["Cell"])
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Thread", "<init>")
    init.load(0); init.load(1); init.emit(Op.PUTFIELD, "Producer", "cell")
    init.ret()
    prod.finish(init)
    run = prod.method("run")
    run.load(0); run.emit(Op.GETFIELD, "Producer", "cell")
    run.emit(Op.MONITORENTER)
    run.load(0); run.emit(Op.GETFIELD, "Producer", "cell")
    run.const(42)
    run.emit(Op.PUTFIELD, "Cell", "value")
    run.load(0); run.emit(Op.GETFIELD, "Producer", "cell")
    run.invoke(Op.INVOKEVIRTUAL, "Cell", "notifyAll")
    run.load(0); run.emit(Op.GETFIELD, "Producer", "cell")
    run.emit(Op.MONITOREXIT)
    run.ret()
    prod.finish(run)

    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    c = mb.alloc_local()
    mb.emit(Op.NEW, "Cell"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Cell", "<init>")
    mb.store(c)
    # synchronized(c) { start producer; while (c.value == 0) c.wait(); }
    mb.load(c); mb.emit(Op.MONITORENTER)
    mb.emit(Op.NEW, "Producer"); mb.emit(Op.DUP)
    mb.load(c)
    mb.invoke(Op.INVOKESPECIAL, "Producer", "<init>")
    mb.invoke(Op.INVOKEVIRTUAL, "Producer", "start")
    loop = mb.label(); got = mb.label()
    mb.mark(loop)
    mb.load(c); mb.emit(Op.GETFIELD, "Cell", "value")
    mb.if_("ne", got)
    mb.load(c)
    mb.invoke(Op.INVOKEVIRTUAL, "Cell", "wait")
    mb.goto(loop)
    mb.mark(got)
    mb.load(c); mb.emit(Op.MONITOREXIT)
    mb.load(c); mb.emit(Op.GETFIELD, "Cell", "value")
    mb.retval()
    cb.finish(mb)

    jvm, thread = run_main([cell, prod.build(), cb.build()], "Main")
    assert thread.result == 42


def test_wait_without_monitor_raises():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    mb.emit(Op.NEW, "Cell"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Cell", "<init>")
    mb.invoke(Op.INVOKEVIRTUAL, "Cell", "wait")
    mb.const(0); mb.retval()
    cb.finish(mb)
    with pytest.raises(IllegalMonitorStateError):
        run_main([_cell_class(), cb.build()], "Main")


def test_double_start_raises():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    t = mb.alloc_local()
    mb.emit(Op.NEW, "Thread"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Thread", "<init>")
    mb.store(t)
    mb.load(t); mb.invoke(Op.INVOKEVIRTUAL, "Thread", "start")
    mb.load(t); mb.invoke(Op.INVOKEVIRTUAL, "Thread", "start")
    mb.const(0); mb.retval()
    cb.finish(mb)
    with pytest.raises(JavaRuntimeError, match="already started"):
        run_main([cb.build()], "Main")


def test_join_on_unstarted_thread_returns():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    mb.emit(Op.NEW, "Thread"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Thread", "<init>")
    mb.invoke(Op.INVOKEVIRTUAL, "Thread", "join")
    mb.const(7); mb.retval()
    cb.finish(mb)
    jvm, thread = run_main([cb.build()], "Main")
    assert thread.result == 7


def test_priority_set_get():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    t = mb.alloc_local()
    mb.emit(Op.NEW, "Thread"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Thread", "<init>")
    mb.store(t)
    mb.load(t); mb.const(9)
    mb.invoke(Op.INVOKEVIRTUAL, "Thread", "setPriority")
    mb.load(t)
    mb.invoke(Op.INVOKEVIRTUAL, "Thread", "getPriority")
    mb.retval()
    cb.finish(mb)
    jvm, thread = run_main([cb.build()], "Main")
    assert thread.result == 9


def test_priority_out_of_range_raises():
    cb = ClassBuilder("Main")
    mb = cb.method("main", ret="int", flags=["static"])
    mb.emit(Op.NEW, "Thread"); mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "Thread", "<init>")
    mb.const(11)
    mb.invoke(Op.INVOKEVIRTUAL, "Thread", "setPriority")
    mb.const(0); mb.retval()
    cb.finish(mb)
    with pytest.raises(JavaRuntimeError):
        run_main([cb.build()], "Main")


def test_many_threads_one_cpu_still_correct():
    classes = [_cell_class(), _worker_class(), _spawn_main(8, 50)]
    jvm, thread = run_main(classes, "Main", cpus=1)
    assert thread.result == 400


def test_parallel_speedup_visible_in_sim_time():
    """Two CPUs should finish two independent workers ~2x faster."""
    from conftest import make_jvm

    def run_with(cpus):
        classes = [_cell_class(), _worker_class(), _spawn_main(2, 2000)]
        engine, node, jvm = make_jvm(cpus=cpus)
        jvm.load_classes(classes)
        jvm.start_main("Main")
        engine.run_until_idle()
        jvm.check_no_failures()
        return engine.now

    t1 = run_with(1)
    t2 = run_with(2)
    assert t2 < t1 * 0.7  # heavy lock traffic, so not a clean 2x
