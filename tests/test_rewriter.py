"""Rewriter tests: structural properties of the transformed bytecode."""

import pytest

from repro.jvm import ClassFormatError, Op, verify_classfiles
from repro.lang import compile_source
from repro.rewriter import (
    PREFIX,
    RT,
    rewrite_application,
    rename_type,
)

COUNTER_SRC = """
class Counter {
    int v;
    static int total = 10;
    synchronized void bump() { v += 1; }
}
class Incr extends Thread {
    Counter c;
    Incr(Counter c) { this.c = c; }
    void run() { c.bump(); }
}
class Main {
    static int main() {
        Counter c = new Counter();
        Incr t = new Incr(c);
        t.start();
        t.join();
        Counter.total += 1;
        return c.v + Counter.total;
    }
}
"""


@pytest.fixture(scope="module")
def result():
    return rewrite_application(compile_source(COUNTER_SRC))


def _method(result, klass, name):
    return result.classfiles[PREFIX + klass].methods[name]


def test_all_classes_renamed(result):
    for name in ("Counter", "Incr", "Main"):
        assert PREFIX + name in result.classfiles
        assert name not in result.classfiles


def test_rename_type_handles_arrays_and_primitives():
    assert rename_type("int") == "int"
    assert rename_type("double[]") == "double[]"
    assert rename_type("Foo") == PREFIX + "Foo"
    assert rename_type("Foo[][]") == PREFIX + "Foo[][]"
    assert rename_type(PREFIX + "Foo") == PREFIX + "Foo"


def test_superclass_references_renamed(result):
    incr = result.classfiles[PREFIX + "Incr"]
    assert incr.super_name == PREFIX + "Thread"


def test_field_types_renamed(result):
    incr = result.classfiles[PREFIX + "Incr"]
    assert incr.field("c").type == PREFIX + "Counter"


def test_rewritten_classes_verify(result):
    verify_classfiles(result.all_classfiles())


def test_every_heap_access_checked(result):
    """No unchecked GETFIELD/PUTFIELD/array ops in rewritten app code."""
    for cf in result.all_classfiles():
        for m in cf.methods.values():
            for instr in m.code:
                if instr.op in (Op.GETFIELD, Op.PUTFIELD, Op.ARRLOAD,
                                Op.ARRSTORE, Op.ARRAYLENGTH):
                    assert instr.checked, f"{cf.name}.{m.name}: {instr}"


def test_monitors_become_dsm_ops(result):
    bump = _method(result, "Counter", "bump")
    ops = [i.op for i in bump.code]
    assert Op.MONITORENTER not in ops
    assert Op.MONITOREXIT not in ops
    assert Op.DSM_ACQUIRE in ops
    assert Op.DSM_RELEASE in ops


def test_thread_start_redirected_to_handler(result):
    main = _method(result, "Main", "main")
    starts = [i for i in main.code if i.b == "startThread"]
    assert len(starts) == 1
    assert starts[0].op is Op.INVOKESTATIC
    assert starts[0].a == RT
    # join stays a virtual call (implemented over the DSM in js.Thread).
    joins = [i for i in main.code if i.b == "join"]
    assert joins and joins[0].op is Op.INVOKEVIRTUAL


def test_statics_moved_to_holder(result):
    counter = result.classfiles[PREFIX + "Counter"]
    assert counter.static_fields() == []
    holder = result.classfiles[PREFIX + "Counter_static"]
    f = holder.field("total")
    assert f is not None and not f.is_static and f.init == 10
    assert (PREFIX + "Counter") in result.static_gids


def test_static_access_uses_holder(result):
    main = _method(result, "Main", "main")
    ops = [i.op for i in main.code]
    assert Op.GETSTATIC not in ops
    assert Op.PUTSTATIC not in ops
    assert Op.DSM_STATICREF in ops


def test_checks_inserted_before_accesses(result):
    run = _method(result, "Incr", "run")
    code = run.code
    for pc, instr in enumerate(code):
        if instr.op is Op.GETFIELD:
            assert code[pc - 1].op is Op.DSM_READCHECK


def test_branch_targets_remapped(result):
    """All branches still land inside the method and verify cleanly."""
    for cf in result.all_classfiles():
        for m in cf.methods.values():
            n = len(m.code)
            for instr in m.code:
                if instr.op is Op.GOTO:
                    assert 0 <= instr.a < n
                elif instr.op in (Op.IF, Op.IF_CMP):
                    assert 0 <= instr.b < n


def test_specs_cover_all_classes(result):
    for name, cf in result.classfiles.items():
        assert name in result.specs
    # Thread spec includes its three int fields.
    spec = result.specs[PREFIX + "Thread"]
    assert spec.kinds == ("i", "i", "i")
    # Incr inherits Thread's fields then adds the Counter ref.
    spec = result.specs[PREFIX + "Incr"]
    assert spec.kinds == ("i", "i", "i", "r")


def test_registry_contains_classes_and_arrays():
    src = """
    class Main {
        static int main() {
            int[][] grid = new int[2][];
            grid[0] = new int[3];
            double[] xs = new double[1];
            return grid[0].length + xs.length;
        }
    }
    """
    result = rewrite_application(compile_source(src))
    reg = result.registry
    assert reg.class_id_for("int[]") > 0
    assert reg.class_id_for("int[][]") > 0
    assert reg.class_id_for("double[]") > 0
    assert reg.class_id_for(PREFIX + "Main") > 0


def test_main_class_detected(result):
    assert result.main_class == PREFIX + "Main"


def test_double_rewrite_rejected(result):
    with pytest.raises(ClassFormatError):
        rewrite_application(result.all_classfiles())


def test_stats_populated(result):
    s = result.stats
    assert s["thread_starts"] == 1
    assert s["monitors"] >= 2
    assert s["statics_moved"] == 1
    assert s["read_checks"] > 0
    assert s["write_checks"] > 0


def test_volatile_access_wrapped():
    src = """
    class Box { volatile int flag; }
    class Main {
        static int main() {
            Box b = new Box();
            b.flag = 1;
            return b.flag;
        }
    }
    """
    result = rewrite_application(compile_source(src))
    main = result.classfiles[PREFIX + "Main"].methods["main"]
    ops = [i.op for i in main.code]
    assert ops.count(Op.DSM_ACQUIRE) == 2  # one per volatile access
    assert ops.count(Op.DSM_RELEASE) == 2
    assert result.stats["volatile_accesses"] == 2
    verify_classfiles(result.all_classfiles())
