"""Verifier tests: structural bytecode validation."""

import pytest

from repro.jvm import ClassBuilder, ClassFormatError, Op, bootstrap_classfiles, verify_classfiles
from repro.jvm.verifier import Verifier


def _verify(*builders):
    classes = bootstrap_classfiles() + [b.build() for b in builders]
    verify_classfiles(classes)


def _main_builder():
    cb = ClassBuilder("M")
    return cb


def test_bootstrap_classes_verify():
    verify_classfiles(bootstrap_classfiles())


def test_valid_method_passes():
    cb = _main_builder()
    mb = cb.method("main", ret="int", flags=["static"])
    mb.const(1)
    mb.const(2)
    mb.emit(Op.ADD)
    mb.retval()
    cb.finish(mb)
    _verify(cb)


def test_fall_off_end_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.const(1)
    mb.emit(Op.POP)
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="fall off"):
        _verify(cb)


def test_stack_underflow_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.emit(Op.POP)
    mb.ret()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="underflow"):
        _verify(cb)


def test_retval_needs_value():
    cb = _main_builder()
    mb = cb.method("main", ret="int", flags=["static"])
    mb.retval()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="underflow"):
        _verify(cb)


def test_branch_out_of_range_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.emit(Op.GOTO, 99)
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="target"):
        _verify(cb)


def test_inconsistent_stack_depth_rejected():
    cb = _main_builder()
    mb = cb.method("main", ret="int", flags=["static"])
    # Two paths reach the same pc with different stack depths.
    after = mb.label()
    mb.const(1)
    mb.if_("eq", after)    # depth 0 on the taken path...
    mb.const(5)            # ...depth 1 on the fall-through
    mb.mark(after)
    mb.const(0)
    mb.retval()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="inconsistent"):
        _verify(cb)


def test_local_index_out_of_range_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"], max_locals=1)
    mb.emit(Op.LOAD, 5)
    mb.emit(Op.POP)
    mb.ret()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="local index"):
        _verify(cb)


def test_bad_condition_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    end = mb.label()
    mb.const(0)
    mb.emit(Op.IF, "bogus", end)
    mb.mark(end)
    mb.ret()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="condition"):
        _verify(cb)


def test_dsm_op_in_uninstrumented_class_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.const(None)
    mb.emit(Op.DSM_ACQUIRE)
    mb.ret()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="un-instrumented"):
        _verify(cb)


def test_dsm_op_in_instrumented_class_allowed():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.const(None)
    mb.emit(Op.DSM_ACQUIRE)
    mb.ret()
    cb.finish(mb)
    cf = cb.build()
    cf.instrumented = True
    verify_classfiles(bootstrap_classfiles() + [cf])


def test_unknown_invoke_target_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.invoke(Op.INVOKESTATIC, "Nowhere", "nothing")
    mb.ret()
    cb.finish(mb)
    with pytest.raises(ClassFormatError, match="unknown class"):
        _verify(cb)


def test_invoke_resolves_through_superclass():
    base = ClassBuilder("VBase")
    m = base.method("f", ret="int")
    m.const(1); m.retval()
    base.finish(m)
    init = base.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "Object", "<init>"); init.ret()
    base.finish(init)

    sub = ClassBuilder("VSub", super_name="VBase")
    init = sub.method("<init>")
    init.load(0); init.invoke(Op.INVOKESPECIAL, "VBase", "<init>"); init.ret()
    sub.finish(init)

    use = ClassBuilder("VUse")
    mb = use.method("main", ret="int", flags=["static"])
    mb.emit(Op.NEW, "VSub")
    mb.emit(Op.DUP)
    mb.invoke(Op.INVOKESPECIAL, "VSub", "<init>")
    mb.invoke(Op.INVOKEVIRTUAL, "VSub", "f")  # declared on VBase
    mb.retval()
    use.finish(mb)
    verify_classfiles(
        bootstrap_classfiles() + [base.build(), sub.build(), use.build()]
    )


def test_check_depth_exceeding_stack_rejected():
    cb = _main_builder()
    mb = cb.method("main", flags=["static"])
    mb.const(None)
    mb.emit(Op.DSM_READCHECK, 3)  # only 1 value on the stack
    mb.emit(Op.POP)
    mb.ret()
    cb.finish(mb)
    cf = cb.build()
    cf.instrumented = True
    with pytest.raises(ClassFormatError, match="check depth"):
        verify_classfiles(bootstrap_classfiles() + [cf])
