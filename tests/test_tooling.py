"""Tests for the developer tooling: disassembler, tracer, CLI."""

import os

import pytest

from repro.jvm.disasm import disassemble, disassemble_class, disassemble_method
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig
from repro.runtime.tracing import DsmTracer
from repro.cli import main as cli_main

SRC = """
class Counter { int v; synchronized void bump() { v += 1; } }
class Worker extends Thread {
    Counter c;
    Worker(Counter c) { this.c = c; }
    void run() { for (int i = 0; i < 20; i++) { c.bump(); } }
}
class Main {
    static int main() {
        Counter c = new Counter();
        Worker a = new Worker(c);
        a.start(); a.join();
        return c.v;
    }
}
"""


# ---------------------------------------------------------------------------
# Disassembler
# ---------------------------------------------------------------------------
def test_disassemble_original_class():
    text = disassemble(compile_source(SRC))
    assert "class Counter extends Object" in text
    assert "synchronized void bump()" in text
    assert "MONITORENTER" in text
    assert "GETFIELD" in text


def test_disassemble_rewritten_shows_instrumentation():
    rewritten = rewrite_application(compile_source(SRC))
    text = disassemble(rewritten.all_classfiles())
    assert "[instrumented]" in text
    assert "DSM_ACQUIRE" in text
    assert "DSM_READCHECK" in text
    assert "[checked]" in text
    assert "MONITORENTER" not in text


def test_disassemble_marks_branch_targets():
    text = disassemble(compile_source(SRC))
    assert ">" in text  # loop heads are marked


def test_disassemble_native_methods():
    from repro.jvm import bootstrap_classfiles

    text = disassemble(bootstrap_classfiles())
    assert "[native]" in text
    assert "class Thread extends Object" in text


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def _traced_run(limit=None):
    rewritten = rewrite_application(compile_source(SRC))
    rt = JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=2))
    tracer = DsmTracer.attach(rt, max_events=limit)
    report = rt.run()
    return tracer, report


def test_tracer_records_protocol_events():
    tracer, report = _traced_run()
    assert report.result == 20
    counts = tracer.counts()
    assert counts.get("promote", 0) >= 2
    assert counts.get("dsm.spawn", 0) == 1
    assert counts.get("dsm.fetch_req", 0) > 0


def test_tracer_timestamps_monotonic():
    tracer, _ = _traced_run()
    times = [e.time_ns for e in tracer.events]
    assert times == sorted(times)


def test_tracer_filters_and_formats():
    tracer, _ = _traced_run()
    spawns = tracer.events_of_type("dsm.spawn")
    assert len(spawns) == 1
    text = tracer.format(kind="dsm.spawn")
    assert "dsm.spawn" in text and "-> n" in text


def test_tracer_event_limit():
    tracer, _ = _traced_run(limit=5)
    assert len(tracer) == 5


def test_tracing_does_not_change_results():
    plain = JavaSplitRuntime(
        rewrite_application(compile_source(SRC)), RuntimeConfig(num_nodes=2)
    ).run()
    _, traced = _traced_run()
    assert plain.result == traced.result
    assert plain.simulated_ns == traced.simulated_ns  # zero-overhead probe


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
@pytest.fixture
def src_file(tmp_path):
    path = tmp_path / "app.mj"
    path.write_text(SRC)
    return str(path)


def test_cli_run(src_file, capsys):
    assert cli_main(["run", src_file, "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "result            : 20" in out
    assert "token transfers" in out


def test_cli_original(src_file, capsys):
    assert cli_main(["original", src_file, "--brand", "ibm"]) == 0
    out = capsys.readouterr().out
    assert "result            : 20" in out


def test_cli_disasm(src_file, capsys):
    assert cli_main(["disasm", src_file]) == 0
    assert "MONITORENTER" in capsys.readouterr().out
    assert cli_main(["disasm", src_file, "--rewritten"]) == 0
    assert "DSM_ACQUIRE" in capsys.readouterr().out


def test_cli_trace(src_file, capsys):
    assert cli_main(["trace", src_file, "--nodes", "2", "--limit", "10"]) == 0
    out = capsys.readouterr().out
    assert "promote" in out
    assert "result            : 20" in out


def test_cli_run_with_extensions(src_file, capsys):
    assert cli_main([
        "run", src_file, "--nodes", "2", "--optimize-checks",
        "--region-elems", "16", "--vector-timestamps",
    ]) == 0
    assert "result            : 20" in capsys.readouterr().out


def test_cli_rejects_unknown_command(src_file):
    with pytest.raises(SystemExit):
        cli_main(["frobnicate", src_file])
