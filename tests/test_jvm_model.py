"""Unit tests for JVM data-model pieces: class files, heap, frames,
linking, serialization edges."""

import pytest

from repro.jvm import (
    ArrayObj,
    ClassBuilder,
    ClassFile,
    ClassFormatError,
    FieldInfo,
    Frame,
    JVM,
    LinkError,
    MethodInfo,
    Obj,
    Op,
    bootstrap_classfiles,
    default_value,
    is_array_type,
    is_ref_type,
    jstr,
)
from repro.jvm.classfile import array_elem_type
from repro.jvm.errors import ArrayIndexError, NegativeArraySizeError
from repro.sim import SUN, Node, SimEngine

from conftest import make_jvm


# ---------------------------------------------------------------------------
# Type helpers
# ---------------------------------------------------------------------------
def test_type_predicates():
    assert is_array_type("int[]") and is_array_type("Foo[][]")
    assert not is_array_type("int")
    assert array_elem_type("Foo[][]") == "Foo[]"
    with pytest.raises(ValueError):
        array_elem_type("int")
    assert is_ref_type("Foo") and is_ref_type("str") and is_ref_type("int[]")
    assert not is_ref_type("int") and not is_ref_type("double")


def test_default_values():
    assert default_value("int") == 0
    assert default_value("boolean") == 0
    assert default_value("double") == 0.0
    assert default_value("Foo") is None
    assert default_value("str") is None
    assert default_value("int[]") is None


# ---------------------------------------------------------------------------
# ClassFile
# ---------------------------------------------------------------------------
def test_duplicate_field_rejected():
    cf = ClassFile("A")
    cf.add_field(FieldInfo("x", "int"))
    with pytest.raises(ClassFormatError):
        cf.add_field(FieldInfo("x", "double"))


def test_duplicate_method_rejected():
    cf = ClassFile("A")
    cf.add_method(MethodInfo("m", [], "void"))
    with pytest.raises(ClassFormatError):
        cf.add_method(MethodInfo("m", ["int"], "void"))


def test_invalid_flags_rejected():
    cf = ClassFile("A")
    with pytest.raises(ClassFormatError):
        cf.add_method(MethodInfo("m", [], "void", flags=frozenset({"magic"})))


def test_object_class_has_no_super():
    cf = ClassFile("Object")
    assert cf.super_name is None
    cf2 = ClassFile("Other")
    assert cf2.super_name == "Object"


def test_classfile_copy_is_deep_for_code():
    cb = ClassBuilder("A")
    mb = cb.method("m", ret="int", flags=["static"])
    mb.const(1)
    mb.retval()
    cb.finish(mb)
    original = cb.build()
    clone = original.copy()
    clone.methods["m"].code[0].a = 99
    assert original.methods["m"].code[0].a == 1


def test_method_nargs():
    m = MethodInfo("m", ["int", "double"], "void")
    assert m.nargs == 3  # receiver + 2
    s = MethodInfo("s", ["int"], "void", flags=frozenset({"static"}))
    assert s.nargs == 1


def test_wire_size_grows_with_content():
    small = ClassFile("A")
    big = ClassFile("A")
    for i in range(10):
        big.add_field(FieldInfo(f"f{i}", "int"))
    assert big.wire_size() > small.wire_size()


# ---------------------------------------------------------------------------
# Heap
# ---------------------------------------------------------------------------
def test_array_defaults_and_bounds():
    arr = ArrayObj("double", 3)
    assert arr.data == [0.0, 0.0, 0.0]
    assert len(arr) == 3
    assert arr.class_name == "double[]"
    with pytest.raises(ArrayIndexError):
        arr.get(3)
    with pytest.raises(ArrayIndexError):
        arr.get(-1)
    with pytest.raises(ArrayIndexError):
        arr.set(5, 1.0)


def test_negative_array_size():
    with pytest.raises(NegativeArraySizeError):
        ArrayObj("int", -1)


def test_obj_field_initialization():
    engine, node, jvm = make_jvm()
    cb = ClassBuilder("P")
    cb.field("a", "int", init=7)
    cb.field("b", "double")
    cb.field("c", "P")
    jvm.load_classes([cb.build()])
    obj = jvm.new_instance("P")
    assert obj.fields == [7, 0.0, None]
    assert obj.class_name == "P"
    assert obj.header is None and obj.monitor is None


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------
def test_link_requires_superclass():
    engine, node, jvm = make_jvm()
    cb = ClassBuilder("Child", super_name="Ghost")
    with pytest.raises(LinkError):
        jvm.load_class(cb.build())


def test_load_classes_resolves_any_order():
    engine, node, jvm = make_jvm()
    a = ClassBuilder("LA").build()
    b = ClassBuilder("LB", super_name="LA").build()
    c = ClassBuilder("LC", super_name="LB").build()
    jvm.load_classes([c, a, b])  # reverse dependency order
    assert jvm.lookup("LC").is_subtype_of("LA")


def test_load_classes_detects_cycles():
    engine, node, jvm = make_jvm()
    a = ClassFile("CycA", super_name="CycB")
    b = ClassFile("CycB", super_name="CycA")
    with pytest.raises(LinkError, match="circular|missing"):
        jvm.load_classes([a, b])


def test_double_load_rejected():
    engine, node, jvm = make_jvm()
    jvm.load_class(ClassBuilder("Once").build())
    with pytest.raises(LinkError):
        jvm.load_class(ClassBuilder("Once").build())


def test_field_shadowing_rejected():
    engine, node, jvm = make_jvm()
    base = ClassBuilder("ShadowBase")
    base.field("x", "int")
    sub = ClassBuilder("ShadowSub", super_name="ShadowBase")
    sub.field("x", "int")
    jvm.load_class(base.build())
    with pytest.raises(LinkError, match="shadows"):
        jvm.load_class(sub.build())


def test_vtable_inheritance_and_override():
    engine, node, jvm = make_jvm()
    base = ClassBuilder("VB")
    m = base.method("f", ret="int")
    m.const(1); m.retval()
    base.finish(m)
    sub = ClassBuilder("VS", super_name="VB")
    jvm.load_classes([base.build(), sub.build()])
    assert jvm.lookup("VS").method("f").klass == "VB"


def test_unknown_field_and_method_raise():
    engine, node, jvm = make_jvm()
    jvm.load_class(ClassBuilder("Bare").build())
    with pytest.raises(LinkError):
        jvm.field_index("Bare", "nothing")
    with pytest.raises(LinkError):
        jvm.resolve_method("Bare", "nothing")
    with pytest.raises(LinkError):
        jvm.lookup("NoSuch")


# ---------------------------------------------------------------------------
# Frame & misc
# ---------------------------------------------------------------------------
def test_frame_locals_padding():
    m = MethodInfo("m", ["int"], "void", max_locals=5,
                   flags=frozenset({"static"}))
    f = Frame(m, [42])
    assert f.locals == [42, None, None, None, None]
    f.push(1)
    f.push(2)
    assert f.peek() == 2 and f.peek(1) == 1
    assert f.pop() == 2


def test_jstr_object_form():
    engine, node, jvm = make_jvm()
    jvm.load_class(ClassBuilder("X").build())
    obj = jvm.new_instance("X")
    assert jstr(obj).startswith("X@")
    arr = ArrayObj("int", 2)
    assert jstr(arr).startswith("int[]@")


def test_bootstrap_classfiles_fresh_each_call():
    a = bootstrap_classfiles()
    b = bootstrap_classfiles()
    assert {cf.name for cf in a} == {cf.name for cf in b}
    # Mutating one batch must not leak into the next (the rewriter
    # renames class files in place).
    a[0].name = "mutated"
    assert b[0].name != "mutated"
