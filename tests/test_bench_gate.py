"""The perf-regression gate: ``tools/bench_gate.py``.

Pure comparisons against the committed snapshots — the gate must pass a
document against itself, and fail loudly on each class of synthetic
regression (deterministic drift, boolean-guarantee loss, wall-clock
speedup collapse)."""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_gate import compare, main  # noqa: E402

REPO = Path(__file__).resolve().parent.parent


def _load(name: str):
    return json.loads((REPO / name).read_text())


@pytest.mark.parametrize("name", ["BENCH_3.json", "BENCH_6.json",
                                  "BENCH_7.json", "BENCH_8.json",
                                  "BENCH_9.json"])
def test_every_committed_snapshot_passes_against_itself(name):
    doc = _load(name)
    assert compare(doc, copy.deepcopy(doc)) == []


def test_deterministic_drift_fails():
    base = _load("BENCH_9.json")
    fresh = copy.deepcopy(base)
    app = next(iter(fresh["apps"]))
    fresh["apps"][app]["runs"]["jit"]["messages"] += 1
    errors = compare(base, fresh)
    assert len(errors) == 1
    assert "messages" in errors[0] and app in errors[0]


def test_identical_flag_regression_fails():
    base = _load("BENCH_9.json")
    fresh = copy.deepcopy(base)
    app = next(iter(fresh["apps"]))
    fresh["apps"][app]["identical"] = False
    errors = compare(base, fresh)
    assert any("identical" in e for e in errors)


def test_speedup_wall_floor():
    base = _load("BENCH_9.json")
    sped = {a: e for a, e in base["apps"].items()
            if (e.get("speedup_wall") or 0) > 1.0}
    assert sped, "BENCH_9 baseline should contain a real jit speedup"
    fresh = copy.deepcopy(base)
    app = next(iter(sped))
    fresh["apps"][app]["speedup_wall"] = 0.5
    errors = compare(base, fresh, wall_tolerance=0.4)
    assert any("speedup_wall" in e for e in errors)
    # Wall noise within tolerance is fine.
    ok = copy.deepcopy(base)
    ok["apps"][app]["speedup_wall"] = round(
        base["apps"][app]["speedup_wall"] * 0.6, 2)
    assert compare(base, ok, wall_tolerance=0.4) == []


def test_backends_doc_regressions():
    base = _load("BENCH_6.json")
    fresh = copy.deepcopy(base)
    app = next(iter(fresh["apps"]))
    fresh["apps"][app]["identical"] = False
    fresh["apps"][app]["proc"]["simulated_ms"] += 1.0
    errors = compare(base, fresh)
    assert any("identical" in e for e in errors)
    assert any("simulated_ms" in e for e in errors)


def test_serve_doc_regressions():
    base = _load("BENCH_8.json")
    fresh = copy.deepcopy(base)
    name = next(iter(fresh["scenarios"]))
    fresh["scenarios"][name]["ok"] = False
    fresh["scenarios"][name]["requests"]["completed"] -= 1
    errors = compare(base, fresh)
    assert any(f"scenarios.{name}.ok" in e for e in errors)
    assert any("requests.completed" in e for e in errors)


def test_missing_app_and_kind_mismatch():
    base = _load("BENCH_3.json")
    fresh = copy.deepcopy(base)
    fresh["apps"].pop(next(iter(fresh["apps"])))
    assert any("missing" in e for e in compare(base, fresh))
    assert compare(base, _load("BENCH_9.json")) == [
        "bench kind mismatch: baseline 'locality' != fresh 'jit'"]


def test_main_exit_codes(tmp_path):
    base_path = REPO / "BENCH_9.json"
    same = tmp_path / "same.json"
    same.write_text(base_path.read_text())
    assert main([str(base_path), "--fresh", str(same)]) == 0

    worse = copy.deepcopy(_load("BENCH_9.json"))
    app = next(iter(worse["apps"]))
    worse["apps"][app]["runs"]["interp"]["bytes"] += 8
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(worse))
    assert main([str(base_path), "--fresh", str(bad)]) == 1

    assert main([str(tmp_path / "nope.json")]) == 2
