"""Tests for the redundant read-check elimination pass (§6.2)."""

import pytest

from repro.jvm import Op, verify_classfiles
from repro.lang import compile_source
from repro.rewriter import PREFIX, rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig, run_original


def counts(src, optimize=True):
    rw = rewrite_application(compile_source(src), optimize_checks=optimize)
    verify_classfiles(rw.all_classfiles())
    return rw


def method_ops(rw, klass, name):
    return [i.op for i in rw.classfiles[PREFIX + klass].methods[name].code]


def test_straight_line_rereads_deduplicated():
    src = """
    class P { int x; int y; }
    class Main {
        static int main() {
            P p = new P();
            return p.x + p.y + p.x;   // three reads, one check needed
        }
    }
    """
    rw = counts(src)
    assert rw.stats["checks_eliminated"] == 2
    ops = method_ops(rw, "Main", "main")
    assert ops.count(Op.DSM_READCHECK) == 1
    assert ops.count(Op.GETFIELD) == 3


def test_elimination_resets_across_loop_boundaries():
    """A check inside a loop body is a branch target region: the first
    check of each iteration must survive."""
    src = """
    class P { int x; }
    class Main {
        static int main() {
            P p = new P();
            int s = 0;
            for (int i = 0; i < 10; i++) { s += p.x + p.x; }
            return s;
        }
    }
    """
    rw = counts(src)
    ops = method_ops(rw, "Main", "main")
    # Two reads per iteration: one check kept, one eliminated.
    assert rw.stats["checks_eliminated"] >= 1
    assert Op.DSM_READCHECK in ops


def test_calls_are_barriers():
    src = """
    class P { int x; }
    class Main {
        static int probe(P p) { return p.x; }
        static int main() {
            P p = new P();
            int a = p.x;
            int b = probe(p);   // callee may acquire: barrier
            int c = p.x;        // must be re-checked
            return a + b + c;
        }
    }
    """
    rw = counts(src)
    ops = method_ops(rw, "Main", "main")
    assert ops.count(Op.DSM_READCHECK) == 2  # before a and after the call


def test_synchronization_is_a_barrier():
    src = """
    class P { int x; }
    class Main {
        static int main() {
            P p = new P();
            int a = p.x;
            synchronized (p) { }
            int b = p.x;   // acquire passed: must re-check
            return a + b;
        }
    }
    """
    rw = counts(src)
    ops = method_ops(rw, "Main", "main")
    assert ops.count(Op.DSM_READCHECK) == 2


def test_store_to_slot_evicts_validation():
    src = """
    class P { int x; }
    class Main {
        static int main() {
            P p = new P();
            int a = p.x;
            p = new P();    // slot now holds a different object
            int b = p.x;    // must be checked again
            return a + b;
        }
    }
    """
    rw = counts(src)
    ops = method_ops(rw, "Main", "main")
    assert ops.count(Op.DSM_READCHECK) == 2


def test_write_check_validates_for_reading():
    src = """
    class P { int x; }
    class Main {
        static int main() {
            P p = new P();
            p.x = 5;          // write check fetches + twins
            return p.x;       // read check redundant
        }
    }
    """
    rw = counts(src)
    assert rw.stats["checks_eliminated"] == 1
    ops = method_ops(rw, "Main", "main")
    assert Op.DSM_WRITECHECK in ops
    assert Op.DSM_READCHECK not in ops


def test_write_checks_never_eliminated():
    src = """
    class P { int x; }
    class Main {
        static int main() {
            P p = new P();
            p.x = 1;
            p.x = 2;
            p.x = 3;
            return p.x;
        }
    }
    """
    rw = counts(src)
    ops = method_ops(rw, "Main", "main")
    assert ops.count(Op.DSM_WRITECHECK) == 3


def test_array_rereads_deduplicated():
    src = """
    class Main {
        static int main() {
            int[] a = new int[4];
            a[0] = 3;
            return a[0] + a[1] + a[2];
        }
    }
    """
    rw = counts(src)
    assert rw.stats["checks_eliminated"] >= 2


def test_static_holder_rereads_deduplicated():
    src = """
    class Cfg { static int c; }
    class Main {
        static int main() { return Cfg.c + Cfg.c; }
    }
    """
    rw = counts(src)
    ops = method_ops(rw, "Main", "main")
    # The holder is a per-class singleton: the second check goes.
    assert ops.count(Op.DSM_READCHECK) == 1
    assert rw.stats["checks_eliminated"] == 1


def test_disabled_by_default():
    src = "class P { int x; } class Main { static int main() { P p = new P(); return p.x + p.x; } }"
    rw = rewrite_application(compile_source(src))
    assert rw.stats["checks_eliminated"] == 0


# ---------------------------------------------------------------------------
# End-to-end correctness with the optimization on
# ---------------------------------------------------------------------------
APPS = []

def _app_cases():
    from repro.apps import raytracer, series, tsp
    return [
        ("tsp", tsp.make_source(n_cities=7, n_threads=4)),
        ("series", series.make_source(n_coeffs=12, steps=16, n_threads=4)),
        ("raytracer", raytracer.make_source(resolution=8, n_threads=4, n_spheres=8)),
    ]


@pytest.mark.parametrize("name,src", _app_cases())
def test_optimized_apps_bit_identical(name, src):
    base = run_original(source=src)
    rw = rewrite_application(compile_source(src), optimize_checks=True)
    assert rw.stats["checks_eliminated"] > 0, name
    for nodes in (1, 3):
        report = JavaSplitRuntime(rw, RuntimeConfig(num_nodes=nodes)).run()
        assert report.result == base.result, (name, nodes)


def test_optimization_reduces_simulated_time():
    from repro.apps import tsp

    src = tsp.make_source(n_cities=7, n_threads=2)
    plain = JavaSplitRuntime(
        rewrite_application(compile_source(src)),
        RuntimeConfig(num_nodes=1),
    ).run()
    opt = JavaSplitRuntime(
        rewrite_application(compile_source(src), optimize_checks=True),
        RuntimeConfig(num_nodes=1),
    ).run()
    assert opt.result == plain.result
    assert opt.simulated_ns < plain.simulated_ns
