"""Unit tests for runtime components: schedulers, class registry, config."""

import pytest

from repro.jvm import JVM, bootstrap_classfiles
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import (
    ClassRegistry,
    LeastLoadedScheduler,
    PinnedScheduler,
    PlacementTracker,
    RandomScheduler,
    RoundRobinScheduler,
    RuntimeConfig,
    make_scheduler,
)
from repro.sim import SUN, Node, SimEngine


class FakeNode:
    def __init__(self, node_id, load):
        self.node_id = node_id
        self.load = load


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------
def test_least_loaded_picks_minimum():
    s = LeastLoadedScheduler()
    nodes = [FakeNode(0, 3), FakeNode(1, 1), FakeNode(2, 2)]
    assert s.choose(nodes) == 1


def test_least_loaded_breaks_ties_deterministically():
    s = LeastLoadedScheduler()
    nodes = [FakeNode(2, 1), FakeNode(0, 1), FakeNode(1, 1)]
    assert s.choose(nodes) == 0


def test_round_robin_cycles():
    s = RoundRobinScheduler()
    nodes = [FakeNode(i, 0) for i in range(3)]
    assert [s.choose(nodes) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_random_scheduler_seeded_and_in_range():
    a = RandomScheduler(seed=5)
    b = RandomScheduler(seed=5)
    nodes = [FakeNode(i, 0) for i in range(4)]
    picks_a = [a.choose(nodes) for _ in range(20)]
    picks_b = [b.choose(nodes) for _ in range(20)]
    assert picks_a == picks_b
    assert all(0 <= p < 4 for p in picks_a)
    assert len(set(picks_a)) > 1


def test_pinned_scheduler():
    s = PinnedScheduler(2)
    assert s.choose([FakeNode(i, 0) for i in range(4)]) == 2


def test_make_scheduler_registry():
    assert isinstance(make_scheduler("least-loaded"), LeastLoadedScheduler)
    assert isinstance(make_scheduler("round-robin"), RoundRobinScheduler)
    assert isinstance(make_scheduler("random", seed=1), RandomScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic")


def test_placement_tracker_counts():
    tracker = PlacementTracker(RoundRobinScheduler())
    nodes = [FakeNode(i, 0) for i in range(2)]
    for _ in range(5):
        tracker.choose(nodes)
    assert tracker.per_node_counts() == {0: 3, 1: 2}
    assert tracker.placements == [0, 1, 0, 1, 0]


# ---------------------------------------------------------------------------
# Class registry
# ---------------------------------------------------------------------------
SRC = """
class Helper { int x; }
class Main { static int main() { return new Helper().x; } }
"""


def test_class_registry_installs_everything():
    rewritten = rewrite_application(compile_source(SRC))
    registry = ClassRegistry(rewritten.classfiles)
    engine = SimEngine()
    jvm = JVM(Node(engine, 0, SUN))
    shipment = registry.install(jvm)
    assert shipment.classes == len(rewritten.classfiles)
    assert shipment.bytes == registry.total_bytes > 0
    for name in rewritten.classfiles:
        assert name in jvm.classes


def test_class_registry_size_reflects_code():
    small = ClassRegistry(rewrite_application(compile_source(SRC)).classfiles)
    big_src = SRC + """
    class Extra {
        int pile;
        int more(int a, int b) { return a * b + a - b + pile; }
        int evenMore(int a) { return a * a * a; }
    }
    """
    big = ClassRegistry(rewrite_application(compile_source(big_src)).classfiles)
    assert big.total_bytes > small.total_bytes


# ---------------------------------------------------------------------------
# RuntimeConfig
# ---------------------------------------------------------------------------
def test_config_brand_of_single():
    cfg = RuntimeConfig(num_nodes=4, brands=("ibm",))
    assert [cfg.brand_of(i) for i in range(4)] == ["ibm"] * 4


def test_config_brand_of_per_node():
    cfg = RuntimeConfig(num_nodes=2, brands=["sun", "ibm"])
    assert cfg.brand_of(0) == "sun" and cfg.brand_of(1) == "ibm"


def test_config_brand_mismatch_rejected():
    cfg = RuntimeConfig(num_nodes=3, brands=["sun", "ibm"])
    with pytest.raises(ValueError):
        cfg.validate()


def test_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=0).validate()
    with pytest.raises(ValueError):
        RuntimeConfig(cpus_per_node=0).validate()
    with pytest.raises(ValueError):
        RuntimeConfig(num_nodes=2, master_node=5).validate()
    RuntimeConfig(num_nodes=2).validate()  # fine


# ---------------------------------------------------------------------------
# Worker wiring smoke checks
# ---------------------------------------------------------------------------
def test_runtime_report_accounting():
    from repro.runtime import JavaSplitRuntime

    rewritten = rewrite_application(compile_source(SRC))
    rt = JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=2))
    report = rt.run()
    assert report.result == 0
    assert report.class_bytes > 0
    assert report.threads_run == 1  # just main
    assert set(report.node_busy_ns) == {0, 1}
    assert report.events > 0
    assert report.simulated_ns > 0


def test_runtime_rejects_app_without_main():
    from repro.runtime import JavaSplitRuntime

    rewritten = rewrite_application(
        compile_source("class OnlyHelper { int x; }")
    )
    rt = JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=1))
    with pytest.raises(ValueError, match="main"):
        rt.run()


def test_scheduler_choice_configurable():
    from repro.runtime import JavaSplitRuntime

    src = """
    class T extends Thread { void run() { } }
    class Main {
        static int main() {
            T[] ts = new T[4];
            for (int i = 0; i < 4; i++) { ts[i] = new T(); ts[i].start(); }
            for (int i = 0; i < 4; i++) { ts[i].join(); }
            return 0;
        }
    }
    """
    rewritten = rewrite_application(compile_source(src))
    rt = JavaSplitRuntime(
        rewritten, RuntimeConfig(num_nodes=2, scheduler="round-robin")
    )
    report = rt.run()
    assert report.placements == {0: 2, 1: 2}
