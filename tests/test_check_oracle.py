"""Consistency oracle + invariant monitor: clean runs pass, broken
protocol mutations are caught."""

import pytest

from repro.check import (
    InvariantMonitor,
    MonitorError,
    SingleCopyOracle,
    normalize_slots,
    run_check,
)
from repro.dsm import DsmConfig
from repro.dsm.objectstate import ObjState
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig

COUNTER_SRC = """
class Counter { int v; }
class W extends Thread {
    Counter c;
    int reps;
    W(Counter c, int reps) { this.c = c; this.reps = reps; }
    void run() {
        for (int i = 0; i < reps; i++) {
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        W a = new W(c, 8);
        W b = new W(c, 8);
        a.start(); b.start();
        a.join(); b.join();
        return c.v;
    }
}
"""


def _runtime(src=COUNTER_SRC, nodes=2, **cfg):
    classfiles = compile_source(src)
    rewritten = rewrite_application(classfiles)
    cfg.setdefault("scheduler", "round-robin")  # spread threads over nodes
    return JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=nodes, **cfg))


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------
def test_clean_run_has_no_violations():
    rt = _runtime()
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    report = rt.run()
    monitor.finalize()
    oracle.finalize()
    assert report.result == 16
    assert monitor.ok, monitor.summary()
    assert oracle.ok, oracle.summary()
    # The checks actually looked at something.
    assert oracle.checked_installs > 0
    assert oracle.checked_final > 0


def test_clean_run_vector_mode():
    rt = _runtime(dsm=DsmConfig(timestamp_mode="vector"))
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    report = rt.run()
    monitor.finalize()
    oracle.finalize()
    assert report.result == 16
    assert monitor.ok, monitor.summary()
    assert oracle.ok, oracle.summary()


def test_clean_run_with_jitter_many_nodes():
    rt = _runtime(nodes=3, net_jitter_ns=2_000_000, seed=11)
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    report = rt.run()
    monitor.finalize()
    oracle.finalize()
    assert report.result == 16
    assert monitor.ok and oracle.ok


# ---------------------------------------------------------------------------
# Broken-protocol regressions: each mutation must be caught
# ---------------------------------------------------------------------------
def _skip_flush(dsm):
    """Protocol mutation: a release that 'forgets' the diff flush."""

    def broken_end_interval(thread):
        tds = dsm.thread_dsm(thread)
        tds.interval += 1
        # BUG under test: no _flush before the release completes.

    dsm.end_interval = broken_end_interval


def test_skipped_flush_is_caught():
    rt = _runtime()
    for w in rt.workers:
        _skip_flush(w.dsm)
    monitor = InvariantMonitor.attach(rt)
    try:
        rt.run(allow_blocked=True)
    except Exception:
        pass  # a crash under a broken protocol is acceptable
    monitor.finalize()
    assert not monitor.ok
    assert any(v.kind == "release-flush" for v in monitor.violations), \
        monitor.summary()


def test_skipped_fence_is_caught():
    """Sending the lock token without waiting for diff acks violates the
    scalar-timestamp fence (§3.1)."""
    rt = _runtime()
    for w in rt.workers:
        w.dsm._when_fence_clear = lambda action: action()
    monitor = InvariantMonitor.attach(rt)
    try:
        rt.run(allow_blocked=True)
    except Exception:
        pass
    monitor.finalize()
    assert any(v.kind == "fence" for v in monitor.violations), \
        monitor.summary()


def test_strict_mode_raises_on_violation():
    rt = _runtime()
    for w in rt.workers:
        _skip_flush(w.dsm)
    InvariantMonitor.attach(rt, strict=True)
    with pytest.raises(MonitorError):
        rt.run(allow_blocked=True)


def test_oracle_catches_corrupted_master():
    """Bit-flipping a master after the run diverges it from the
    single-copy reference."""
    rt = _runtime()
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    rt.run()
    monitor.finalize()
    corrupted = 0
    for w in rt.workers:
        dsm = w.dsm
        for gid, obj in dsm.cache.items():
            hdr = obj.header
            if hdr is None or hdr.state != ObjState.HOME:
                continue
            if gid in dsm._regions or gid in dsm._dirty_home:
                continue
            if hdr.version not in oracle._golden.get(gid, {}):
                continue
            slots = obj.data if hasattr(obj, "data") else obj.fields
            for i, v in enumerate(slots):
                if isinstance(v, int) and not isinstance(v, bool):
                    slots[i] = v + 1
                    corrupted += 1
    assert corrupted > 0
    oracle.finalize()
    assert not oracle.ok
    assert any(v.kind == "oracle-state" for v in oracle.violations), \
        oracle.summary()


# ---------------------------------------------------------------------------
# normalize_slots
# ---------------------------------------------------------------------------
def test_normalize_slots_nan_compares_equal():
    a = normalize_slots([1, float("nan"), "x"])
    b = normalize_slots([1, float("nan"), "x"])
    assert a == b


def test_normalize_slots_refs_by_gid():
    class _Hdr:
        def __init__(self, gid):
            self.gid = gid

    from repro.jvm.heap import ArrayObj

    def arr(gid):
        a = ArrayObj("int", 1)
        a.header = _Hdr(gid)
        return a

    assert normalize_slots([arr(0x42)]) == normalize_slots([arr(0x42)])
    assert normalize_slots([arr(0x42)]) != normalize_slots([arr(0x43)])


# ---------------------------------------------------------------------------
# The sweep runner
# ---------------------------------------------------------------------------
def test_run_check_clean_series():
    report = run_check(app="series", seeds=2)
    assert report.ok, report.summary()
    assert len(report.results) == 2
    assert all(r.installs_checked > 0 for r in report.results)


def test_run_check_with_faults():
    report = run_check(app="series", seeds=2, faults="drop,reorder,dup")
    assert report.ok, report.summary()
    injected = sum(
        r.faults.dropped + r.faults.duplicated + r.faults.reordered
        for r in report.results if r.faults)
    assert injected > 0  # the plan actually exercised the ARQ layer


def test_run_check_unknown_app_rejected():
    with pytest.raises(ValueError, match="unknown app"):
        run_check(app="nope", seeds=1)
