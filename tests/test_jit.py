"""Differential proof that the tiered JIT is observationally invisible.

Tier-1 compiled execution must be *bit-identical* to the interpreter in
every observable: program result, console, simulated clock, per-type
protocol message counts, final master heap — while only the wall clock
changes.  These tests run every benchmark app with the JIT off and on
under identical configs and diff everything, compose the JIT with the
fault/race/locality/policy/proc subsystems under the consistency
oracle, and pin per-opcode semantics (integer division/remainder
truncation, double division by zero, NaN conversion, unsigned shift)
with golden interpreter-vs-compiled runs.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.check.runner import DEFAULT_JITTER_NS, app_source, run_check
from repro.jit import REASON_NAMES, N_REASONS
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime.config import RuntimeConfig
from repro.runtime.javasplit import JavaSplitRuntime

from test_procnet import heap_fingerprint

APPS = ("series", "tsp", "raytracer")


def run_app(app: str, jit: bool, seed: int = 0, check_elim: int = 0,
            **overrides) -> Tuple:
    config = RuntimeConfig(
        num_nodes=3,
        net_jitter_ns=DEFAULT_JITTER_NS,
        seed=seed,
        jit_enable=jit,
        jit_check_elim=check_elim,
        **overrides,
    )
    rewritten = rewrite_application(compile_source(app_source(app)),
                                    check_elim=check_elim)
    runtime = JavaSplitRuntime(rewritten, config)
    report = runtime.run()
    return report, heap_fingerprint(runtime)


def assert_identical(base, base_heap, jit, jit_heap) -> None:
    """Every observable the interpreter produces, bit-for-bit."""
    assert jit.result == base.result
    assert sorted(jit.console) == sorted(base.console)
    assert jit.simulated_ns == base.simulated_ns
    assert jit.threads_run == base.threads_run
    assert jit.net.messages == base.net.messages
    assert jit.net.bytes == base.net.bytes
    # Per-type protocol counts: one reordered fetch or early/late diff
    # (a single mis-charged nanosecond) shows up here.
    assert jit.net.by_type == base.net.by_type
    assert jit_heap == base_heap
    assert base_heap, "fingerprint should cover a non-trivial heap"


# ---------------------------------------------------------------------------
# The core differential: every app, multiple seeds
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("seed", (0, 3))
def test_jit_observationally_identical(app, seed):
    base, base_heap = run_app(app, jit=False, seed=seed)
    jit, jit_heap = run_app(app, jit=True, seed=seed)
    assert_identical(base, base_heap, jit, jit_heap)
    # And the run genuinely went through compiled code.
    assert base.jit is None
    assert jit.jit is not None
    assert jit.jit["compiles"] > 0
    assert not jit.jit["blacklisted"]
    assert jit.jit["exit_reasons"].get("return", 0) > 0


@pytest.mark.parametrize("app", APPS)
def test_jit_identical_on_eliminated_code(app):
    """The JIT consumes level-2 (region + loop-hoisted) check-elim
    output; elimination changes the observables, the JIT must not."""
    base, base_heap = run_app(app, jit=False, check_elim=2)
    jit, jit_heap = run_app(app, jit=True, check_elim=2)
    assert_identical(base, base_heap, jit, jit_heap)
    assert jit.jit["compiles"] > 0


# ---------------------------------------------------------------------------
# Verifier coverage of post-elimination code
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("level", (1, 2))
def test_post_elimination_code_verifies(app, level):
    # rewrite_application runs verify_classfiles on its output; a
    # malformed elimination (bad stack depth, dangling branch) raises.
    rewritten = rewrite_application(compile_source(app_source(app)),
                                    check_elim=level)
    assert rewritten.stats["checks_eliminated"] > 0


# ---------------------------------------------------------------------------
# Composition: the JIT under faults, races, locality, policies, proc
# ---------------------------------------------------------------------------
def test_jit_composed_kill_race_locality():
    report = run_check(app="series", seeds=2, kill="random", race=True,
                       locality="all", jit=True, jit_threshold=5)
    assert report.ok, report.summary()


def test_jit_composed_policy():
    report = run_check(app="raytracer", seeds=2, policy="all", jit=True)
    assert report.ok, report.summary()


def test_jit_proc_backend_identical(proc_guard):
    """Sim + jit must match proc + jit (and therefore sim interpreted,
    by transitivity with the tier-0 cross-backend tests)."""
    base, base_heap = run_app("series", jit=True)
    proc, proc_heap = run_app("series", jit=True,
                              transport_backend="proc")
    assert_identical(base, base_heap, proc, proc_heap)
    assert proc.jit["compiles"] > 0


# ---------------------------------------------------------------------------
# Per-opcode golden differentials
# ---------------------------------------------------------------------------
GOLDEN_SOURCE = """
class Edge {
    // Hot enough to compile at threshold 1; exercises the opcode
    // corners where Java and Python semantics diverge.
    int idiv(int a, int b) { return a / b; }
    int irem(int a, int b) { return a % b; }
    double ddiv(double a, double b) { return a / b; }
    int shifts(int a, int b) { return (a >> b) + (a >>> b) + (a << 1); }
    int d2i(double x) { return (int) x; }

    int run() {
        int acc = 0;
        for (int i = 0; i < 12; i++) {
            acc += idiv(-7, 2);          // Java truncates toward zero: -3
            acc += idiv(7, -2);
            acc += irem(-7, 2);          // sign follows dividend: -1
            acc += irem(7, -2);
            acc += shifts(-8, 1);
            acc += d2i(3.99);            // truncation, not rounding
            acc += d2i(0.0 / 0.0);       // NaN -> 0
            if (ddiv(1.0, 0.0) > 0.0) { acc += 1; }   // +inf
            if (ddiv(-1.0, 0.0) < 0.0) { acc += 1; }  // -inf
            if (ddiv(0.0, 0.0) == ddiv(0.0, 0.0)) { acc += 100; } // NaN != NaN
        }
        return acc;
    }
}

class EdgeMain {
    static int main() {
        Edge e = new Edge();
        int r = e.run();
        Sys.print("edges = " + r);
        Sys.print("mix = " + (1.0 / 3.0) + " " + (0.5 + 0.25));
        return r;
    }
}
"""

FAILING_SOURCE = """
class Boom {
    int hot(int d) { return 100 / d; }
}

class BoomMain {
    static int main() {
        Boom b = new Boom();
        int acc = 0;
        for (int i = 5; i >= 0; i--) { acc += b.hot(i); }   // hits /0
        return acc;
    }
}
"""


def run_source(source: str, jit: bool, **overrides):
    config = RuntimeConfig(num_nodes=2, seed=0, jit_enable=jit,
                           jit_threshold=1, **overrides)
    rewritten = rewrite_application(compile_source(source))
    runtime = JavaSplitRuntime(rewritten, config)
    return runtime.run(), runtime


def test_golden_opcode_edges():
    base, _ = run_source(GOLDEN_SOURCE, jit=False)
    jit, rt = run_source(GOLDEN_SOURCE, jit=True)
    assert jit.result == base.result
    assert jit.console == base.console
    assert jit.simulated_ns == base.simulated_ns
    assert jit.jit["compiles"] > 0
    # The hot method really ran compiled, not just compiled-and-ignored.
    assert jit.jit["exit_reasons"].get("return", 0) > 0


def test_golden_exception_identical():
    """A JVMError raised from compiled code must fail the thread with
    the interpreter's exact message (same pc, same frame.where())."""
    with pytest.raises(Exception) as base_exc:
        run_source(FAILING_SOURCE, jit=False)
    with pytest.raises(Exception) as jit_exc:
        run_source(FAILING_SOURCE, jit=True)
    assert type(jit_exc.value) is type(base_exc.value)
    assert str(jit_exc.value) == str(base_exc.value)


# ---------------------------------------------------------------------------
# Knob-off regression + report shape
# ---------------------------------------------------------------------------
def test_jit_off_by_default():
    config = RuntimeConfig()
    assert config.jit_enable is False
    assert config.jit_enabled is False
    base, base_heap = run_app("series", jit=False)
    default_cfg = RuntimeConfig(num_nodes=3,
                                net_jitter_ns=DEFAULT_JITTER_NS, seed=0)
    rewritten = rewrite_application(compile_source(app_source("series")))
    runtime = JavaSplitRuntime(rewritten, default_cfg)
    assert runtime.jit is None
    report = runtime.run()
    assert report.jit is None
    assert runtime.workers[0].jvm.jit is None
    assert report.simulated_ns == base.simulated_ns
    assert report.net.by_type == base.net.by_type
    assert heap_fingerprint(runtime) == base_heap


def test_jit_report_shape():
    jit, _ = run_app("series", jit=True)
    rep = jit.jit
    assert rep["threshold"] == 10
    assert rep["compiles"] == sum(n["compiled"] for n in rep["nodes"])
    assert len(REASON_NAMES) == N_REASONS
    for info in rep["methods"].values():
        assert info["tier"] == 1
        assert set(info["exits"]) <= set(REASON_NAMES)
    # Deopt counter is derived from the exit histogram.
    assert rep["deopts"] == rep["exit_reasons"].get("deopt", 0)


def test_jit_metrics_published():
    jit, _ = run_app("series", jit=True, obs_metrics=True)
    metrics = jit.obs["metrics"]
    counters = metrics["counters"]
    assert counters["jit.compiles"]["total"] > 0
    assert counters["jit.exit.return"]["total"] > 0
