"""DSM protocol behaviour tests: notice propagation, invalidation,
fences, vector mode, and failure injection."""

import pytest

from repro.dsm import HLRC_BASELINE, DsmConfig, ObjState
from repro.runtime import RuntimeConfig, run_distributed, run_original
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime.javasplit import JavaSplitRuntime
from repro.sim import NS_PER_MS


# ---------------------------------------------------------------------------
# Regression: per-receiver notice deltas + replica-version invalidation.
#
# Two protocol bugs once lost updates in exactly this shape of workload
# (branch-and-bound TSP): (1) a lock token kept ONE shared seen-notices
# snapshot, so a node the token had skipped got an empty delta on the
# token's next visit; (2) invalidation was filtered on notice-table
# advancement, but a writer's own diff-ack advances its table without
# refreshing its replica, suppressing the invalidation.  Both manifest
# only with >= 2 locks, >= 3 nodes and token round trips.
# ---------------------------------------------------------------------------
TWO_LOCK_MONOTONIC = """
class Best { int v; Best(int v) { this.v = v; } }
class Ticket { int next; }
class W extends Thread {
    Best best;
    Ticket q;
    W(Best b, Ticket q) { best = b; this.q = q; }
    void run() {
        while (true) {
            int t;
            synchronized (q) { t = q.next; q.next += 1; }
            if (t >= 120) { break; }
            // Candidate value decreases over ticket numbers; stale reads
            // of best.v are safe (monotonic), lost WRITES are not.
            int candidate = 2000 - t * 3;
            if (candidate < best.v) {
                synchronized (best) {
                    if (candidate < best.v) { best.v = candidate; }
                }
            }
        }
    }
}
class Main {
    static int main() {
        Best best = new Best(1000000);
        Ticket q = new Ticket();
        int k = 12;
        W[] ts = new W[k];
        for (int i = 0; i < k; i++) { ts[i] = new W(best, q); ts[i].start(); }
        for (int i = 0; i < k; i++) { ts[i].join(); }
        return best.v;
    }
}
"""


def test_monotonic_minimum_never_regresses_regression():
    expected = 2000 - 119 * 3
    for nodes in (3, 6):
        report = run_distributed(
            source=TWO_LOCK_MONOTONIC,
            config=RuntimeConfig(num_nodes=nodes, time_dilation=50),
        )
        assert report.result == expected, f"nodes={nodes}: lost update"


def test_tsp_correct_on_eight_nodes_regression():
    """The original failing configuration, kept as a regression gate."""
    from repro.apps import tsp

    src = tsp.make_source(n_cities=7, n_threads=16)
    base = run_original(source=src)
    report = run_distributed(
        source=src, config=RuntimeConfig(num_nodes=8, time_dilation=1500)
    )
    assert report.result == base.result


# ---------------------------------------------------------------------------
# Vector-timestamp (HLRC baseline) mode
# ---------------------------------------------------------------------------
COUNTER = """
class Cell { int v; }
class Incr extends Thread {
    Cell c;
    Incr(Cell c) { this.c = c; }
    void run() {
        for (int i = 0; i < 40; i++) { synchronized (c) { c.v += 1; } }
    }
}
class Main {
    static int main() {
        Cell c = new Cell();
        Incr[] ts = new Incr[6];
        for (int i = 0; i < 6; i++) { ts[i] = new Incr(c); ts[i].start(); }
        for (int i = 0; i < 6; i++) { ts[i].join(); }
        return c.v;
    }
}
"""


def test_vector_mode_counter_correct():
    report = run_distributed(
        source=COUNTER,
        config=RuntimeConfig(num_nodes=3, dsm=HLRC_BASELINE),
    )
    assert report.result == 240


def test_vector_mode_never_fences():
    rt = JavaSplitRuntime(
        rewrite_application(compile_source(COUNTER)),
        RuntimeConfig(num_nodes=3, dsm=HLRC_BASELINE),
    )
    report = rt.run()
    assert report.result == 240
    assert report.total_dsm().fence_waits == 0


def test_scalar_mode_fences_under_contention():
    rt = JavaSplitRuntime(
        rewrite_application(compile_source(COUNTER)),
        RuntimeConfig(num_nodes=3),
    )
    report = rt.run()
    assert report.result == 240
    assert report.total_dsm().fence_waits > 0


# ---------------------------------------------------------------------------
# Failure injection: network jitter (reordering under the transport)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_counter_correct_under_network_jitter(seed):
    report = run_distributed(
        source=COUNTER,
        config=RuntimeConfig(
            num_nodes=4, net_jitter_ns=3 * NS_PER_MS, seed=seed
        ),
    )
    assert report.result == 240


def test_tsp_correct_under_jitter():
    from repro.apps import tsp

    src = tsp.make_source(n_cities=7, n_threads=6)
    base = run_original(source=src)
    report = run_distributed(
        source=src,
        config=RuntimeConfig(num_nodes=3, net_jitter_ns=2 * NS_PER_MS, seed=9),
    )
    assert report.result == base.result


# ---------------------------------------------------------------------------
# Header / replica state introspection
# ---------------------------------------------------------------------------
def test_replicas_invalidate_and_refetch():
    rt = JavaSplitRuntime(
        rewrite_application(compile_source(COUNTER)),
        RuntimeConfig(num_nodes=3),
    )
    report = rt.run()
    total = report.total_dsm()
    assert total.invalidations > 0
    assert total.fetches > total.invalidations * 0.3
    # The cell's master lives at its home with a consistent final value.
    for w in rt.workers:
        for gid, obj in w.dsm.cache.items():
            if obj.class_name == "javasplit.Cell":
                if obj.header.state == ObjState.HOME:
                    assert obj.fields[w.jvm.field_index("javasplit.Cell", "v")] == 240


def test_local_objects_stay_out_of_dsm():
    src = """
    class Scratch { int x; }
    class Main {
        static int main() {
            int acc = 0;
            for (int i = 0; i < 50; i++) {
                Scratch s = new Scratch();
                s.x = i;
                acc += s.x;
            }
            return acc;
        }
    }
    """
    rt = JavaSplitRuntime(
        rewrite_application(compile_source(src)),
        RuntimeConfig(num_nodes=2),
    )
    report = rt.run()
    assert report.result == sum(range(50))
    total = report.total_dsm()
    # Local objects are never promoted: no fetches, no diffs about them.
    assert total.fetches == 0
    assert total.promotions == 0


def test_promotion_happens_on_thread_spawn():
    src = """
    class Box { int v; }
    class T extends Thread {
        Box b;
        T(Box b) { this.b = b; }
        void run() { b.v = 7; }
    }
    class Main {
        static int main() {
            Box b = new Box();
            T t = new T(b);
            t.start();
            t.join();
            return b.v;
        }
    }
    """
    rt = JavaSplitRuntime(
        rewrite_application(compile_source(src)),
        RuntimeConfig(num_nodes=2),
    )
    report = rt.run()
    assert report.result == 7
    assert report.total_dsm().promotions >= 2  # the Thread obj + the Box
