"""LockToken wait/notify edge cases (§3.2 owner-managed queues):
notify_one ordering under mixed priorities, park_waiter re-park
semantics, enqueue dedup against parked waiters, and seen_notices
per-receiver delta propagation across token transfers."""

from repro.dsm.locks import LockRequest, LockToken
from repro.dsm.write_notices import Notice, NoticeTable


def _req(node, tid, priority=5):
    return LockRequest(node=node, thread_id=tid, priority=priority)


# ---------------------------------------------------------------------------
# notify_one / notify_all ordering
# ---------------------------------------------------------------------------
def test_notify_one_is_fifo_regardless_of_priority():
    # Java's notify wakes an arbitrary waiter; this runtime pins the
    # choice to the LONGEST-waiting one.  Priority orders the request
    # queue, not the wait queue: a high-priority thread that parked
    # later must not starve an earlier low-priority waiter.
    token = LockToken(gid=0x10)
    token.park_waiter(_req(0, 1, priority=1))   # parked first, low prio
    token.park_waiter(_req(1, 2, priority=9))   # parked later, high prio
    assert token.notify_one() is True
    # The low-priority early parker got notified...
    assert [(r.node, r.thread_id) for r in token.waitq] == [(1, 2)]
    # ...and now sits in the request queue.
    assert [(r.node, r.thread_id) for r in token.queue] == [(0, 1)]


def test_notified_waiters_reenter_queue_by_priority():
    # Once notified, waiters DO compete by priority again: notify_all
    # re-enqueues in park order, but the request queue re-sorts, so a
    # high-priority waiter overtakes both the earlier-notified
    # low-priority one and previously queued normal requests.
    token = LockToken(gid=0x11)
    token.enqueue(_req(2, 7, priority=5))
    token.park_waiter(_req(0, 1, priority=1))
    token.park_waiter(_req(1, 2, priority=9))
    assert token.notify_all() == 2
    assert token.waitq == []
    assert [(r.thread_id, r.priority) for r in token.queue] == [
        (2, 9), (7, 5), (1, 1)]
    # FIFO within a priority level is preserved via seq.
    grantee = token.pop_next()
    assert grantee.thread_id == 2 and grantee.priority == 9


def test_notify_one_on_empty_waitq():
    token = LockToken(gid=0x12)
    assert token.notify_one() is False
    assert token.notify_all() == 0


# ---------------------------------------------------------------------------
# park_waiter re-park and enqueue dedup
# ---------------------------------------------------------------------------
def test_park_waiter_repark_replaces_entry():
    # Recovery may re-park a (node, thread) whose original record
    # survived on the token: the stale entry is replaced, not
    # duplicated, and the re-parked thread moves to the back.
    token = LockToken(gid=0x13)
    token.park_waiter(_req(0, 1))
    token.park_waiter(_req(1, 2))
    token.park_waiter(LockRequest(node=0, thread_id=1, priority=8,
                                  restore_count=3))
    assert [(r.node, r.thread_id) for r in token.waitq] == [(1, 2), (0, 1)]
    # The replacement's fields won (restore_count matters on re-grant).
    assert token.waitq[-1].restore_count == 3


def test_enqueue_dedups_against_parked_waiter():
    # A recovery-re-issued acquire for a thread that is actually parked
    # in the wait queue must be dropped: granting it would wake a
    # waiter without a notify.
    token = LockToken(gid=0x14)
    token.park_waiter(_req(0, 1))
    token.enqueue(_req(0, 1))
    assert token.queue == []
    token.enqueue(_req(1, 2))
    token.enqueue(_req(1, 2))
    assert len(token.queue) == 1


def test_park_notify_cycle_preserves_seen_notices():
    # wait/notify is communication-free at the owner; churning the
    # queues must not disturb the per-receiver notice snapshots the
    # token carries.
    token = LockToken(gid=0x15)
    token.seen_notices[1] = {0x15: 4}
    token.seen_notices[2] = {0x15: 2}
    token.park_waiter(_req(1, 2))
    token.notify_one()
    token.pop_next()
    assert token.seen_notices == {1: {0x15: 4}, 2: {0x15: 2}}


# ---------------------------------------------------------------------------
# seen_notices propagation (the per-receiver delta contract)
# ---------------------------------------------------------------------------
def test_seen_notices_delta_is_per_receiver():
    # The token may carry a notice past node A to node B; A still needs
    # it on the token's next visit.  delta_since() updates the
    # receiver's snapshot in place, so consecutive transfers to the
    # SAME node ship nothing twice while a different node still gets
    # the full delta.
    table = NoticeTable()  # bounded (scalar) mode
    table.add(Notice(gid=0xA, version=3))
    table.add(Notice(gid=0xB, version=1))
    token = LockToken(gid=0x16)

    to_b = token.seen_notices.setdefault(2, {})
    delta_b = table.delta_since(to_b)
    assert sorted((n.gid, n.version) for n in delta_b) == [(0xA, 3), (0xB, 1)]
    # Second transfer to B: nothing new.
    assert table.delta_since(token.seen_notices[2]) == []

    # First transfer to A still carries everything.
    to_a = token.seen_notices.setdefault(1, {})
    delta_a = table.delta_since(to_a)
    assert sorted((n.gid, n.version) for n in delta_a) == [(0xA, 3), (0xB, 1)]

    # A newer version supersedes the snapshot for both receivers.
    table.add(Notice(gid=0xA, version=7))
    assert [(n.gid, n.version)
            for n in table.delta_since(token.seen_notices[2])] == [(0xA, 7)]
    assert token.seen_notices[2][0xA] == 7


def test_wire_size_tracks_queue_and_notice_growth():
    token = LockToken(gid=0x17)
    base = token.wire_size()
    token.enqueue(_req(0, 1))
    token.park_waiter(_req(1, 2))
    with_queues = token.wire_size()
    assert with_queues > base
    token.seen_notices[1] = {0xA: 1, 0xB: 2}
    assert token.wire_size() == with_queues + 4 + 12 * 2
