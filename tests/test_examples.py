"""Smoke tests: the shipped examples must run end-to-end.

(The ray-tracer scaling example is exercised by its own benchmark; it is
too slow for the unit suite.)
"""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")


def run_example(name):
    path = os.path.join(EXAMPLES, name)
    runpy.run_path(path, run_name="__main__")


def test_quickstart_example(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "original" in out
    assert "4 node(s)" in out
    assert "sum of squares below 8000" in out


def test_producer_consumer_example(capsys):
    run_example("producer_consumer.py")
    out = capsys.readouterr().out
    assert "1275" in out
    assert "token moves" in out


def test_cycle_stealing_example(capsys):
    run_example("cycle_stealing.py")
    out = capsys.readouterr().out
    assert "cluster grew 2 -> 4 nodes" in out


def test_heterogeneous_cluster_example(capsys):
    run_example("heterogeneous_cluster.py")
    out = capsys.readouterr().out
    assert "best tour" in out
    assert "dsm.token" in out


def test_examples_have_docstrings_and_main():
    for name in os.listdir(EXAMPLES):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(EXAMPLES, name)) as fh:
            source = fh.read()
        assert source.lstrip().startswith('"""'), name
        assert '__main__' in source, name
