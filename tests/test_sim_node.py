"""Unit tests for node CPU scheduling."""

import pytest

from repro.sim import SUN, Node, SimEngine, StreamState


class FakeStream:
    """Consumes a fixed total of simulated ns, in per-quantum chunks."""

    def __init__(self, total_ns, chunk_ns=None):
        self.remaining = total_ns
        self.chunk_ns = chunk_ns
        self.finished_at = None

    def run_quantum(self, budget_ns):
        take = min(self.remaining, budget_ns)
        if self.chunk_ns is not None:
            take = min(take, self.chunk_ns)
        self.remaining -= take
        if self.remaining == 0:
            return take, StreamState.FINISHED
        return take, StreamState.RUNNABLE


class BlockingStream:
    """Runs, blocks once, must be woken externally, then finishes."""

    def __init__(self, node):
        self.node = node
        self.phase = 0

    def run_quantum(self, budget_ns):
        if self.phase == 0:
            self.phase = 1
            # Arrange an external wake 1 ms later.
            self.node.engine.schedule(1_000_000, lambda: self.node.wake(self))
            return 100, StreamState.BLOCKED
        return 200, StreamState.FINISHED


def test_single_stream_runs_to_completion():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=1)
    s = FakeStream(200_000)
    node.add_stream(s)
    eng.run_until_idle()
    assert s.remaining == 0
    assert node.finished_streams == 1
    assert node.busy_ns == 200_000


def test_two_cpus_run_two_streams_in_parallel():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=2)
    a, b = FakeStream(1_000_000), FakeStream(1_000_000)
    node.add_stream(a)
    node.add_stream(b)
    eng.run_until_idle()
    # Two CPUs: wall time ~= one stream's time, busy time = both.
    assert eng.now <= 1_100_000
    assert node.busy_ns == 2_000_000


def test_one_cpu_timeshares_two_streams():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=1, quantum_ns=10_000)
    a, b = FakeStream(100_000), FakeStream(100_000)
    node.add_stream(a)
    node.add_stream(b)
    eng.run_until_idle()
    assert eng.now >= 200_000
    assert node.finished_streams == 2


def test_four_streams_two_cpus_wall_time():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=2)
    streams = [FakeStream(500_000) for _ in range(4)]
    for s in streams:
        node.add_stream(s)
    eng.run_until_idle()
    assert node.busy_ns == 2_000_000
    # 4 streams on 2 CPUs: wall time ~2x one stream's.
    assert 1_000_000 <= eng.now <= 1_200_000


def test_blocked_stream_waits_for_wake():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=1)
    s = BlockingStream(node)
    node.add_stream(s)
    eng.run_until_idle()
    assert node.finished_streams == 1
    assert eng.now >= 1_000_000  # had to wait out the wake delay


def test_wake_unblocked_stream_rejected():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=1)
    s = FakeStream(100)
    node.add_stream(s)
    with pytest.raises(RuntimeError):
        node.wake(s)


def test_load_tracks_live_streams():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=2)
    assert node.load == 0
    a = FakeStream(50_000)
    node.add_stream(a)
    assert node.load == 1
    eng.run_until_idle()
    assert node.load == 0


def test_idle_property():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=2)
    assert node.idle
    node.add_stream(FakeStream(10_000))
    eng.run_until_idle()
    assert node.idle


def test_zero_cpu_rejected():
    eng = SimEngine()
    with pytest.raises(ValueError):
        Node(eng, 0, SUN, num_cpus=0)


def test_streams_added_mid_run_get_scheduled():
    eng = SimEngine()
    node = Node(eng, 0, SUN, num_cpus=2)
    late = FakeStream(100_000)
    eng.schedule(500_000, lambda: node.add_stream(late))
    node.add_stream(FakeStream(100_000))
    eng.run_until_idle()
    assert node.finished_streams == 2
    assert late.remaining == 0
