"""Shared test helpers: quick JVM construction and program execution."""

from __future__ import annotations

from typing import Any, List, Optional

import pytest

from repro.jvm import JVM, bootstrap_classfiles
from repro.sim import Node, SimEngine, get_brand


def make_jvm(brand: str = "sun", cpus: int = 2, quantum_ns: int = 50_000):
    """A fresh engine + node + JVM with bootstrap classes loaded."""
    engine = SimEngine()
    node = Node(engine, 0, get_brand(brand), num_cpus=cpus, quantum_ns=quantum_ns)
    jvm = JVM(node)
    jvm.load_classes(bootstrap_classfiles())
    return engine, node, jvm


def run_main(
    classfiles,
    main_class: str,
    args: Optional[List[Any]] = None,
    brand: str = "sun",
    cpus: int = 2,
    max_events: int = 5_000_000,
):
    """Load classes, run static main to completion, return (jvm, thread)."""
    engine, node, jvm = make_jvm(brand=brand, cpus=cpus)
    jvm.load_classes(list(classfiles))
    thread = jvm.start_main(main_class, args)
    engine.run_until_idle(max_events=max_events)
    jvm.check_no_failures()
    return jvm, thread


@pytest.fixture
def jvm_env():
    return make_jvm()
