"""Shared test helpers: quick JVM construction and program execution."""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Any, List, Optional

import pytest

from repro.jvm import JVM, bootstrap_classfiles
from repro.sim import Node, SimEngine, get_brand


def make_jvm(brand: str = "sun", cpus: int = 2, quantum_ns: int = 50_000):
    """A fresh engine + node + JVM with bootstrap classes loaded."""
    engine = SimEngine()
    node = Node(engine, 0, get_brand(brand), num_cpus=cpus, quantum_ns=quantum_ns)
    jvm = JVM(node)
    jvm.load_classes(bootstrap_classfiles())
    return engine, node, jvm


def run_main(
    classfiles,
    main_class: str,
    args: Optional[List[Any]] = None,
    brand: str = "sun",
    cpus: int = 2,
    max_events: int = 5_000_000,
):
    """Load classes, run static main to completion, return (jvm, thread)."""
    engine, node, jvm = make_jvm(brand=brand, cpus=cpus)
    jvm.load_classes(list(classfiles))
    thread = jvm.start_main(main_class, args)
    engine.run_until_idle(max_events=max_events)
    jvm.check_no_failures()
    return jvm, thread


@pytest.fixture
def jvm_env():
    return make_jvm()


# ---------------------------------------------------------------------------
# Multiprocess-backend guard rails (tests/test_procnet.py)
# ---------------------------------------------------------------------------

#: Hard wall-clock ceiling for one proc-backend test.  A wedged worker
#: or a lost frame must fail the test, not hang the suite (CI runs
#: without pytest-timeout locally, so the alarm is the backstop).
PROC_TEST_TIMEOUT_S = 120


@pytest.fixture
def proc_guard():
    """Timeout + orphan-reaper for tests that fork worker processes.

    Arms a SIGALRM that raises inside the test if it exceeds the
    ceiling, and at teardown reaps any worker processes the test leaked
    before *failing* the test — leaked children would poison every
    later fork-based test in the session.
    """

    def on_alarm(signum, frame):  # pragma: no cover - only fires on hang
        raise TimeoutError(
            f"proc-backend test exceeded {PROC_TEST_TIMEOUT_S}s "
            "(wedged worker or lost frame?)")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(PROC_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
        leaked = multiprocessing.active_children()
        for child in leaked:  # reap so later tests start clean
            try:
                os.kill(child.pid, signal.SIGKILL)
            except OSError:
                pass
            child.join(timeout=5)
    assert not leaked, (
        f"test leaked worker processes: "
        f"{[(c.name, c.pid) for c in leaked]}")
