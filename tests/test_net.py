"""Unit tests for the simulated network and transport layers."""

import pytest

from repro.net import HEADER_BYTES, Message, NetStats, SimNetwork, Transport, estimate_size
from repro.net.message import estimate_size as est
from repro.sim import IBM, SUN, NS_PER_MS, SimEngine
from repro.sim.cost_model import COMM_FIXED_NS, COMM_PER_BYTE_NS


# ---------------------------------------------------------------------------
# Message / size estimation
# ---------------------------------------------------------------------------
def test_estimate_size_scalars():
    assert est(None) == 1
    assert est(True) == 1
    assert est(7) == 8
    assert est(3.14) == 8
    assert est(b"abcd") == 8
    assert est("hi") == 6


def test_estimate_size_containers():
    assert est([1, 2]) == 4 + 16
    assert est({"a": 1}) == 4 + est("a") + 8


def test_estimate_size_rejects_unknown():
    class Foo:
        pass

    with pytest.raises(TypeError):
        est(Foo())


def test_message_size_includes_header():
    m = Message("ping", 0, 1, {"x": 1})
    assert m.size_bytes == HEADER_BYTES + est({"x": 1})


def test_message_explicit_size_wins():
    m = Message("ping", 0, 1, {"x": 1}, size_bytes=1234)
    assert m.size_bytes == 1234


def test_message_ids_unique():
    a = Message("t", 0, 1)
    b = Message("t", 0, 1)
    assert a.msg_id != b.msg_id


# ---------------------------------------------------------------------------
# SimNetwork latency model
# ---------------------------------------------------------------------------
def _net_pair(brand_a=SUN, brand_b=SUN, **kw):
    eng = SimEngine()
    net = SimNetwork(eng, **kw)
    inbox_a, inbox_b = [], []
    net.attach(0, brand_a, inbox_a.append)
    net.attach(1, brand_b, inbox_b.append)
    return eng, net, inbox_a, inbox_b


def test_latency_model_formula():
    eng, net, _, _ = _net_pair()
    size = 1000
    expected = SUN[COMM_FIXED_NS] + size * SUN[COMM_PER_BYTE_NS]
    assert net.latency_ns(0, 1, size) == expected


def test_latency_mixed_brands_uses_mean_fixed_and_max_per_byte():
    eng, net, _, _ = _net_pair(SUN, IBM)
    size = 100
    fixed = (SUN[COMM_FIXED_NS] + IBM[COMM_FIXED_NS]) // 2
    pb = max(SUN[COMM_PER_BYTE_NS], IBM[COMM_PER_BYTE_NS])
    assert net.latency_ns(0, 1, size) == fixed + size * pb


def test_delivery_happens_after_latency():
    eng, net, _, inbox_b = _net_pair()
    m = Message("ping", 0, 1, {}, size_bytes=100)
    net.send(m)
    assert inbox_b == []
    eng.run_until_idle()
    assert inbox_b == [m]
    assert eng.now == net.latency_ns(0, 1, 100)


def test_table3_shape_65000_bytes_about_6ms():
    """Paper Table 3: ~6 ms one-way at 65000 B on 100 Mbit."""
    eng, net, _, _ = _net_pair()
    lat = net.latency_ns(0, 1, 65_000)
    assert 5 * NS_PER_MS < lat < 8 * NS_PER_MS


def test_send_to_unattached_raises():
    eng = SimEngine()
    net = SimNetwork(eng)
    net.attach(0, SUN, lambda m: None)
    with pytest.raises(KeyError):
        net.send(Message("x", 0, 99))
    with pytest.raises(KeyError):
        net.send(Message("x", 99, 0))


def test_double_attach_rejected():
    eng = SimEngine()
    net = SimNetwork(eng)
    net.attach(0, SUN, lambda m: None)
    with pytest.raises(ValueError):
        net.attach(0, SUN, lambda m: None)


def test_detach_drops_in_flight():
    eng, net, _, inbox_b = _net_pair()
    net.send(Message("ping", 0, 1, {}))
    net.detach(1)
    eng.run_until_idle()
    assert inbox_b == []


def test_stats_accounting():
    eng, net, _, _ = _net_pair()
    net.send(Message("a", 0, 1, {}, size_bytes=100))
    net.send(Message("a", 0, 1, {}, size_bytes=50))
    net.send(Message("b", 1, 0, {}, size_bytes=10))
    assert net.stats.messages == 3
    assert net.stats.bytes == 160
    assert net.stats.by_type["a"] == (2, 150)
    assert net.stats.by_link[(0, 1)] == (2, 150)
    net.stats.reset()
    assert net.stats.messages == 0


def test_stats_reset_clears_breakdowns_and_dropped():
    eng, net, _, _ = _net_pair()
    net.send(Message("a", 0, 1, {}, size_bytes=100))
    net.detach(1)
    eng.run_until_idle()
    assert net.stats.dropped == 1
    net.stats.reset()
    assert net.stats.messages == 0
    assert net.stats.bytes == 0
    assert net.stats.dropped == 0
    assert net.stats.by_type == {}
    assert net.stats.by_link == {}


def test_stats_merge_accumulates():
    a = NetStats()
    b = NetStats()
    a.record(Message("x", 0, 1, {}, size_bytes=10))
    b.record(Message("x", 0, 1, {}, size_bytes=5))
    b.record(Message("y", 1, 0, {}, size_bytes=7))
    b.dropped = 2
    out = a.merge(b)
    assert out is a  # chains
    assert a.messages == 3
    assert a.bytes == 22
    assert a.dropped == 2
    assert a.by_type["x"] == (2, 15)
    assert a.by_type["y"] == (1, 7)
    assert a.by_link[(0, 1)] == (2, 15)
    assert a.by_link[(1, 0)] == (1, 7)
    # merge does not mutate its argument
    assert b.messages == 2 and b.by_type["x"] == (1, 5)


def test_stats_merge_many_equals_single_run():
    parts = [NetStats() for _ in range(3)]
    whole = NetStats()
    msgs = [Message("t", i % 2, 1 - i % 2, {}, size_bytes=i) for i in range(9)]
    for i, m in enumerate(msgs):
        parts[i % 3].record(m)
        whole.record(m)
    agg = NetStats()
    for p in parts:
        agg.merge(p)
    assert agg == whole


def test_detach_in_flight_drop_keeps_stats_coherent():
    """An in-flight drop bumps ``dropped`` but never corrupts the send
    accounting (the wire carried the frame)."""
    eng, net, _, inbox_b = _net_pair()
    for i in range(5):
        net.send(Message("a", 0, 1, {}, size_bytes=10))
    net.detach(1)
    eng.run_until_idle()
    assert inbox_b == []
    assert net.stats.messages == 5
    assert net.stats.bytes == 50
    assert net.stats.dropped == 5
    assert net.stats.by_type["a"] == (5, 50)
    assert "dropped in flight" in net.stats.summary()


def test_loopback_send_is_fast_and_async():
    eng, net, inbox_a, _ = _net_pair()
    net.send(Message("self", 0, 0, {}))
    assert inbox_a == []
    eng.run_until_idle()
    assert len(inbox_a) == 1
    assert eng.now < 10_000


# ---------------------------------------------------------------------------
# Transport: typed dispatch + FIFO reassembly
# ---------------------------------------------------------------------------
def _transport_pair(jitter_ns=0, seed=0):
    eng = SimEngine()
    net = SimNetwork(eng, jitter_ns=jitter_ns, seed=seed)
    ta = Transport(net, 0, SUN)
    tb = Transport(net, 1, SUN)
    return eng, net, ta, tb


def test_transport_typed_dispatch():
    eng, net, ta, tb = _transport_pair()
    got = []
    tb.on("hello", lambda m: got.append(m.payload["n"]))
    ta.send(1, "hello", {"n": 42})
    eng.run_until_idle()
    assert got == [42]


def test_transport_unknown_type_raises():
    eng, net, ta, tb = _transport_pair()
    ta.send(1, "mystery", {})
    with pytest.raises(RuntimeError, match="no handler"):
        eng.run_until_idle()


def test_transport_duplicate_handler_rejected():
    eng, net, ta, tb = _transport_pair()
    tb.on("x", lambda m: None)
    with pytest.raises(ValueError):
        tb.on("x", lambda m: None)


def test_transport_fifo_without_jitter():
    eng, net, ta, tb = _transport_pair()
    got = []
    tb.on("seq", lambda m: got.append(m.payload["i"]))
    for i in range(20):
        ta.send(1, "seq", {"i": i})
    eng.run_until_idle()
    assert got == list(range(20))


def test_transport_fifo_under_jitter():
    """Sequence numbers restore FIFO even when the raw net reorders."""
    eng, net, ta, tb = _transport_pair(jitter_ns=5 * NS_PER_MS, seed=7)
    got = []
    tb.on("seq", lambda m: got.append(m.payload["i"]))
    for i in range(50):
        ta.send(1, "seq", {"i": i})
    eng.run_until_idle()
    assert got == list(range(50))


def test_transport_fifo_independent_per_source():
    eng = SimEngine()
    net = SimNetwork(eng, jitter_ns=2 * NS_PER_MS, seed=3)
    t0 = Transport(net, 0, SUN)
    t1 = Transport(net, 1, SUN)
    t2 = Transport(net, 2, IBM)
    got = []
    t0.on("m", lambda m: got.append((m.src, m.payload["i"])))
    for i in range(10):
        t1.send(0, "m", {"i": i})
        t2.send(0, "m", {"i": i})
    eng.run_until_idle()
    assert [i for s, i in got if s == 1] == list(range(10))
    assert [i for s, i in got if s == 2] == list(range(10))


# ---------------------------------------------------------------------------
# Reliable (ARQ) mode
# ---------------------------------------------------------------------------
def _reliable_pair(jitter_ns=0, seed=0):
    eng = SimEngine()
    net = SimNetwork(eng, jitter_ns=jitter_ns, seed=seed)
    ta = Transport(net, 0, SUN, reliable=True)
    tb = Transport(net, 1, SUN, reliable=True)
    return eng, net, ta, tb


def test_reliable_clean_net_adds_only_acks():
    eng, net, ta, tb = _reliable_pair()
    got = []
    tb.on("m", lambda m: got.append(m.payload["i"]))
    for i in range(10):
        ta.send(1, "m", {"i": i})
    eng.run_until_idle()
    assert got == list(range(10))
    assert tb.stats.acks_sent == 10
    assert ta.stats.retransmissions == 0
    assert ta.stats.gave_up == 0
    assert ta.quiesced()


def test_reliable_fifo_under_jitter():
    eng, net, ta, tb = _reliable_pair(jitter_ns=5 * NS_PER_MS, seed=9)
    got = []
    tb.on("m", lambda m: got.append(m.payload["i"]))
    for i in range(40):
        ta.send(1, "m", {"i": i})
    eng.run_until_idle()
    assert got == list(range(40))
    assert ta.quiesced() and tb.quiesced()


def test_reliable_send_to_detached_peer_does_not_raise():
    eng, net, ta, tb = _reliable_pair()
    net.detach(1)
    ta.send(1, "m", {"i": 0})  # unreliable mode would raise KeyError
    eng.run_until_idle()       # bounded retries: terminates
    assert ta.stats.to_dead_dropped > 0 or ta.stats.gave_up > 0


def test_unreliable_send_to_detached_peer_raises():
    eng = SimEngine()
    net = SimNetwork(eng)
    ta = Transport(net, 0, SUN)
    with pytest.raises(KeyError):
        ta.send(1, "m", {})


def test_reliable_close_cancels_timers():
    eng, net, ta, tb = _reliable_pair()
    net.detach(1)
    ta.send(1, "m", {"i": 0})
    ta.close()
    eng.run_until_idle()  # no timer storm after close
    assert not net.is_attached(0)
