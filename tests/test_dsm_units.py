"""Unit tests for the DSM building blocks (no protocol engine)."""

import pytest

from repro.dsm import (
    ClassIdRegistry,
    ClassSpec,
    GidAllocator,
    LockRequest,
    LockToken,
    Notice,
    NoticeTable,
    SerializationError,
    VectorClock,
    attach_header,
    home_of,
)
from repro.dsm.diffs import apply_diff, compute_diff, make_twin
from repro.dsm.objectstate import ObjState
from repro.dsm.serialization import (
    K_DOUBLE,
    K_INT,
    K_REF,
    K_STR,
    deserialize_any,
    deserialize_into,
    serialize_any,
    serialize_array,
    serialize_object,
)
from repro.dsm.write_notices import MODE_FULL
from repro.jvm.heap import ArrayObj


# ---------------------------------------------------------------------------
# Gids and homes
# ---------------------------------------------------------------------------
def test_gid_encodes_home():
    alloc = GidAllocator(5)
    gid = alloc.allocate()
    assert home_of(gid) == 5
    assert alloc.allocate() != gid


def test_gids_unique_across_nodes():
    a, b = GidAllocator(0), GidAllocator(1)
    gids = {a.allocate() for _ in range(100)} | {b.allocate() for _ in range(100)}
    assert len(gids) == 200


def test_home_of_rejects_null_gid():
    with pytest.raises(ValueError):
        home_of(0)


def test_class_id_registry_deterministic():
    r1 = ClassIdRegistry(["B", "A", "C"])
    r2 = ClassIdRegistry(["C", "A", "B"])
    for name in ("A", "B", "C"):
        assert r1.class_id_for(name) == r2.class_id_for(name)
    assert r1.class_name_for(r1.class_id_for("B")) == "B"


def test_class_id_registry_unknown_raises():
    reg = ClassIdRegistry(["A"])
    with pytest.raises(KeyError):
        reg.class_id_for("Nope")
    with pytest.raises(KeyError):
        reg.class_name_for(99)


# ---------------------------------------------------------------------------
# Vector clocks
# ---------------------------------------------------------------------------
def test_vector_clock_tick_and_merge():
    a = VectorClock()
    a.tick(1); a.tick(1); a.tick(2)
    b = VectorClock()
    b.tick(2); b.tick(2); b.tick(3)
    a.merge(b)
    assert a.get(1) == 2 and a.get(2) == 2 and a.get(3) == 1


def test_vector_clock_dominates():
    a = VectorClock({1: 2, 2: 1})
    b = VectorClock({1: 1})
    assert a.dominates(b)
    assert not b.dominates(a)
    assert a.dominates(a.copy())


def test_vector_clock_never_decreases():
    a = VectorClock({1: 5})
    with pytest.raises(ValueError):
        a.set(1, 3)


def test_vector_clock_wire_size_grows_with_entries():
    a = VectorClock({i: 1 for i in range(10)})
    b = VectorClock({1: 1})
    assert a.wire_size() > b.wire_size()


# ---------------------------------------------------------------------------
# Write notices
# ---------------------------------------------------------------------------
def test_bounded_table_keeps_latest_only():
    t = NoticeTable()
    assert t.add(Notice(7, 1))
    assert t.add(Notice(7, 3))
    assert not t.add(Notice(7, 2))  # stale
    assert t.required_scalar(7) == 3
    assert t.stored_notices == 1


def test_full_mode_log_grows_without_bound():
    t = NoticeTable(MODE_FULL)
    for v in range(100):
        t.add(Notice(7, v + 1))
    assert t.stored_notices == 100
    bounded = NoticeTable()
    for v in range(100):
        bounded.add(Notice(7, v + 1))
    assert bounded.stored_notices == 1
    assert t.storage_bytes() > bounded.storage_bytes()


def test_delta_since_updates_snapshot():
    t = NoticeTable()
    t.add(Notice(1, 5))
    t.add(Notice(2, 2))
    seen = {}
    delta = t.delta_since(seen)
    assert {(n.gid, n.version) for n in delta} == {(1, 5), (2, 2)}
    # Second call sends nothing new.
    assert t.delta_since(seen) == []
    t.add(Notice(1, 6))
    delta = t.delta_since(seen)
    assert [(n.gid, n.version) for n in delta] == [(1, 6)]


def test_vector_notices_track_per_writer():
    t = NoticeTable()
    t.add(Notice(1, 3, writer=0))
    t.add(Notice(1, 2, writer=1))
    assert t.required_vector(1) == {0: 3, 1: 2}
    seen = {}
    delta = t.delta_since_vector(seen)
    assert len(delta) == 2
    assert t.delta_since_vector(seen) == []


# ---------------------------------------------------------------------------
# Lock tokens
# ---------------------------------------------------------------------------
def test_lock_queue_priority_then_fifo():
    token = LockToken(1)
    token.enqueue(LockRequest(0, 10, priority=5))
    token.enqueue(LockRequest(0, 11, priority=9))
    token.enqueue(LockRequest(0, 12, priority=5))
    order = [token.pop_next().thread_id for _ in range(3)]
    assert order == [11, 10, 12]


def test_lock_wait_notify_moves_entries():
    token = LockToken(1)
    token.park_waiter(LockRequest(0, 10, restore_count=3))
    token.park_waiter(LockRequest(1, 11))
    assert token.pop_next() is None
    assert token.notify_one()
    req = token.pop_next()
    assert req.thread_id == 10 and req.restore_count == 3
    token.notify_all()
    assert token.pop_next().thread_id == 11
    assert not token.notify_one()


def test_token_wire_size_tracks_queues():
    empty = LockToken(1).wire_size()
    token = LockToken(1)
    for i in range(5):
        token.enqueue(LockRequest(0, i))
    assert token.wire_size() > empty


# ---------------------------------------------------------------------------
# Serialization & diffs (with a fake resolver)
# ---------------------------------------------------------------------------
class FakeObj:
    """Stands in for a heap Obj: fields + class_name + header."""

    def __init__(self, class_name, fields):
        self.class_name = class_name
        self.fields = fields
        self.header = None


class FakeResolver:
    def __init__(self):
        self.registry = ClassIdRegistry(["Point", "Node", "int[]"])
        self.objects = {}
        self.next_gid = 1

    def gid_for(self, ref):
        hdr = attach_header(ref)
        if not hdr.gid:
            hdr.gid = (1 << 40) | self.next_gid
            self.next_gid += 1
            self.objects[hdr.gid] = ref
        return hdr.gid

    def class_id_for(self, name):
        return self.registry.class_id_for(name)

    def class_name_for(self, cid):
        return self.registry.class_name_for(cid)

    def replica_for(self, gid, class_name):
        obj = self.objects.get(gid)
        if obj is None:
            obj = FakeObj(class_name, [])
            self.objects[gid] = obj
        return obj


POINT_SPEC = ClassSpec("Point", (K_INT, K_DOUBLE, K_STR, K_REF))


def test_object_serialize_roundtrip():
    res = FakeResolver()
    other = FakeObj("Point", [1, 1.0, None, None])
    obj = FakeObj("Point", [42, 3.25, "hi", other])
    data = serialize_object(obj, POINT_SPEC, res)
    out = FakeObj("Point", [0, 0.0, None, None])
    deserialize_into(out, POINT_SPEC, data, res)
    assert out.fields[0] == 42
    assert out.fields[1] == 3.25
    assert out.fields[2] == "hi"
    assert out.fields[3] is other  # resolved through the gid


def test_serialize_null_ref_and_null_str():
    res = FakeResolver()
    obj = FakeObj("Point", [0, 0.0, None, None])
    data = serialize_object(obj, POINT_SPEC, res)
    out = FakeObj("Point", [9, 9.9, "x", obj])
    deserialize_into(out, POINT_SPEC, data, res)
    assert out.fields == [0, 0.0, None, None]


def test_serialize_layout_mismatch_rejected():
    res = FakeResolver()
    obj = FakeObj("Point", [1, 2.0])  # too few fields
    with pytest.raises(SerializationError):
        serialize_object(obj, POINT_SPEC, res)


def test_int_array_roundtrip():
    res = FakeResolver()
    arr = ArrayObj("int", 5)
    arr.data = [1, -2, 3, 0, 7]
    data = serialize_array(arr, res)
    out = ArrayObj("int", 0)
    deserialize_any(out, None, data, res)
    assert out.data == [1, -2, 3, 0, 7]


def test_ref_array_roundtrip_creates_stubs():
    res = FakeResolver()
    a = FakeObj("Point", [1, 1.0, None, None])
    arr = ArrayObj("Point", 2)
    arr.data = [a, None]
    data = serialize_array(arr, res)
    out = ArrayObj("Point", 0)
    deserialize_any(out, None, data, res)
    assert out.data[0] is a
    assert out.data[1] is None


def test_huge_int_rejected():
    res = FakeResolver()
    arr = ArrayObj("int", 1)
    arr.data = [1 << 70]
    with pytest.raises(SerializationError):
        serialize_array(arr, res)


# ---------------------------------------------------------------------------
# Twins & diffs
# ---------------------------------------------------------------------------
def test_diff_only_changed_fields():
    res = FakeResolver()
    obj = FakeObj("Point", [1, 2.0, "a", None])
    twin = make_twin(obj)
    obj.fields[0] = 99
    diff = compute_diff(obj, twin, POINT_SPEC, res)
    assert diff is not None
    master = FakeObj("Point", [1, 2.0, "a", None])
    n = apply_diff(master, POINT_SPEC, diff, res)
    assert n == 1
    assert master.fields == [99, 2.0, "a", None]


def test_no_change_yields_none():
    res = FakeResolver()
    obj = FakeObj("Point", [1, 2.0, "a", None])
    twin = make_twin(obj)
    assert compute_diff(obj, twin, POINT_SPEC, res) is None


def test_diff_multiple_writers_merge_disjoint_fields():
    res = FakeResolver()
    master = FakeObj("Point", [0, 0.0, None, None])
    # Writer A changes field 0; writer B changes field 1.
    wa = FakeObj("Point", [0, 0.0, None, None])
    ta = make_twin(wa); wa.fields[0] = 5
    wb = FakeObj("Point", [0, 0.0, None, None])
    tb = make_twin(wb); wb.fields[1] = 7.5
    apply_diff(master, POINT_SPEC, compute_diff(wa, ta, POINT_SPEC, res), res)
    apply_diff(master, POINT_SPEC, compute_diff(wb, tb, POINT_SPEC, res), res)
    assert master.fields == [5, 7.5, None, None]


def test_array_diff_roundtrip():
    res = FakeResolver()
    arr = ArrayObj("double", 4)
    twin = make_twin(arr)
    arr.data[2] = 9.5
    diff = compute_diff(arr, twin, None, res)
    master = ArrayObj("double", 4)
    apply_diff(master, None, diff, res)
    assert master.data == [0.0, 0.0, 9.5, 0.0]


def test_diff_ref_field_ships_gid():
    res = FakeResolver()
    target = FakeObj("Point", [3, 0.0, None, None])
    obj = FakeObj("Point", [0, 0.0, None, None])
    twin = make_twin(obj)
    obj.fields[3] = target
    diff = compute_diff(obj, twin, POINT_SPEC, res)
    master = FakeObj("Point", [0, 0.0, None, None])
    apply_diff(master, POINT_SPEC, diff, res)
    assert master.fields[3] is target
    assert target.header.gid != 0  # got promoted during serialization


def test_twin_length_mismatch_rejected():
    res = FakeResolver()
    arr = ArrayObj("int", 3)
    twin = make_twin(arr)
    arr.data.append(5)  # illegal resize
    with pytest.raises(SerializationError):
        compute_diff(arr, twin, None, res)


def test_object_stale_twin_rejected():
    res = FakeResolver()
    obj = FakeObj("Point", [1, 2.0, "a", None])
    stale = make_twin(obj)[:-1]  # a twin from a different layout
    with pytest.raises(SerializationError, match="twin length mismatch"):
        compute_diff(obj, stale, POINT_SPEC, res)


def test_write_then_revert_yields_empty_diff():
    """A slot written and written back equals its twin: no diff at all
    (write traffic scales with *net* modifications)."""
    res = FakeResolver()
    obj = FakeObj("Point", [1, 2.0, "a", None])
    twin = make_twin(obj)
    obj.fields[0] = 99
    obj.fields[0] = 1  # reverted before the release
    assert compute_diff(obj, twin, POINT_SPEC, res) is None


def test_diff_entry_count_matches_encoding():
    from repro.dsm.diffs import diff_entry_count

    res = FakeResolver()
    obj = FakeObj("Point", [1, 2.0, "a", None])
    twin = make_twin(obj)
    obj.fields[0] = 5
    obj.fields[1] = 6.5
    diff = compute_diff(obj, twin, POINT_SPEC, res)
    assert diff_entry_count(diff) == 2


def test_overlapping_diffs_apply_in_timestamp_order():
    """Two writers racing on the SAME slot: the home applies diffs in
    arrival (timestamp) order, so the later diff wins — and reversing
    the order reverses the winner.  This is exactly the LRC guarantee:
    racy writes are ordered by the home's serialization, nothing more."""
    res = FakeResolver()
    wa = FakeObj("Point", [0, 0.0, None, None])
    ta = make_twin(wa); wa.fields[0] = 5
    wb = FakeObj("Point", [0, 0.0, None, None])
    tb = make_twin(wb); wb.fields[0] = 9
    da = compute_diff(wa, ta, POINT_SPEC, res)
    db = compute_diff(wb, tb, POINT_SPEC, res)

    m1 = FakeObj("Point", [0, 0.0, None, None])
    apply_diff(m1, POINT_SPEC, da, res)
    apply_diff(m1, POINT_SPEC, db, res)
    assert m1.fields[0] == 9

    m2 = FakeObj("Point", [0, 0.0, None, None])
    apply_diff(m2, POINT_SPEC, db, res)
    apply_diff(m2, POINT_SPEC, da, res)
    assert m2.fields[0] == 5


def test_diff_index_out_of_range_rejected():
    res = FakeResolver()
    big = ArrayObj("int", 8)
    twin = make_twin(big)
    big.data[6] = 3
    diff = compute_diff(big, twin, None, res)
    small = ArrayObj("int", 4)  # master shorter than the diff expects
    with pytest.raises(SerializationError, match="out of range"):
        apply_diff(small, None, diff, res)


def test_region_diff_index_out_of_range_rejected():
    from repro.dsm.diffs import apply_region_diff, compute_region_diff, \
        make_region_twin

    res = FakeResolver()
    arr = ArrayObj("int", 64)
    twin = make_region_twin(arr, 32, 64)
    arr.data[60] = 1
    diff = compute_region_diff(arr, 32, twin, res)
    short = ArrayObj("int", 40)
    with pytest.raises(SerializationError, match="out of range"):
        apply_region_diff(short, 32, diff, res)


def test_empty_region_diff_is_none():
    from repro.dsm.diffs import compute_region_diff, make_region_twin

    res = FakeResolver()
    arr = ArrayObj("int", 64)
    twin = make_region_twin(arr, 0, 32)
    arr.data[40] = 7  # write outside the region only
    assert compute_region_diff(arr, 0, twin, res) is None


# ---------------------------------------------------------------------------
# Array-region bookkeeping (§4.3 extension)
# ---------------------------------------------------------------------------
def test_region_info_bounds_and_mapping():
    from repro.dsm.protocol import RegionInfo
    from repro.dsm.objectstate import ObjState

    reg = RegionInfo(elems=32, states=[ObjState.INVALID] * 4,
                     versions=[0] * 4)
    assert reg.n_regions == 4
    assert reg.region_of(0) == 0
    assert reg.region_of(31) == 0
    assert reg.region_of(32) == 1
    assert reg.region_of(127) == 3
    assert reg.bounds(0, 100) == (0, 32)
    assert reg.bounds(3, 100) == (96, 100)  # trailing partial region


def test_region_diff_roundtrip_local_indices():
    from repro.dsm.diffs import (
        apply_region_diff, compute_region_diff, make_region_twin,
    )
    from repro.jvm.heap import ArrayObj

    res = FakeResolver()
    arr = ArrayObj("int", 100)
    twin = make_region_twin(arr, 32, 64)
    arr.data[40] = 7
    arr.data[63] = 9
    arr.data[10] = 99  # outside the region: must not appear in the diff
    diff = compute_region_diff(arr, 32, twin, res)
    master = ArrayObj("int", 100)
    n = apply_region_diff(master, 32, diff, res)
    assert n == 2
    assert master.data[40] == 7 and master.data[63] == 9
    assert master.data[10] == 0


def test_region_serialize_roundtrip():
    from repro.dsm.diffs import deserialize_region, serialize_region
    from repro.jvm.heap import ArrayObj

    res = FakeResolver()
    arr = ArrayObj("double", 50)
    for i in range(50):
        arr.data[i] = float(i)
    data = serialize_region(arr, 10, 20, res)
    out = ArrayObj("double", 50)
    deserialize_region(out, 10, data, res)
    assert out.data[10:20] == [float(i) for i in range(10, 20)]
    assert out.data[0] == 0.0 and out.data[20] == 0.0
