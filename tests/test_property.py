"""Property-based tests (hypothesis) on core data structures and the
end-to-end coherence guarantee."""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

# Wall-clock varies a lot on shared CI machines (and these tests run a
# whole simulated cluster); keep hypothesis focused on inputs, not time.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.dsm import ClassSpec, LockRequest, LockToken, Notice, NoticeTable, VectorClock
from repro.dsm.diffs import apply_diff, compute_diff, make_twin
from repro.dsm.serialization import (
    K_DOUBLE, K_INT, K_STR, deserialize_into, serialize_object,
)
from repro.jvm.interpreter import java_ddiv, java_idiv, java_irem

# ---------------------------------------------------------------------------
# Java arithmetic semantics
# ---------------------------------------------------------------------------
ints = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)


@given(a=ints, b=ints.filter(lambda x: x != 0))
def test_java_division_identity(a, b):
    q = java_idiv(a, b)
    r = java_irem(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    # Remainder sign follows the dividend (JLS 15.17.3).
    assert r == 0 or (r > 0) == (a > 0)


@given(a=ints, b=ints.filter(lambda x: x != 0))
def test_java_division_truncates_toward_zero(a, b):
    assert java_idiv(a, b) == int(a / b) if abs(a) < 2**52 else True


@given(a=st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_java_ddiv_by_zero_never_raises(a):
    out = java_ddiv(a, 0.0)
    assert math.isnan(out) or math.isinf(out)


# ---------------------------------------------------------------------------
# Vector clocks
# ---------------------------------------------------------------------------
clock_entries = st.dictionaries(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=1, max_value=100),
    max_size=6,
)


@given(a=clock_entries, b=clock_entries)
def test_vector_clock_merge_commutative(a, b):
    x = VectorClock(a); x.merge(VectorClock(b))
    y = VectorClock(b); y.merge(VectorClock(a))
    assert x == y


@given(a=clock_entries)
def test_vector_clock_merge_idempotent(a):
    x = VectorClock(a)
    x.merge(VectorClock(a))
    assert x == VectorClock(a)


@given(a=clock_entries, b=clock_entries)
def test_vector_clock_merge_dominates_both(a, b):
    x = VectorClock(a)
    x.merge(VectorClock(b))
    assert x.dominates(VectorClock(a))
    assert x.dominates(VectorClock(b))


@given(a=clock_entries, b=clock_entries, c=clock_entries)
def test_vector_clock_merge_associative(a, b, c):
    x = VectorClock(a); x.merge(VectorClock(b)); x.merge(VectorClock(c))
    y = VectorClock(b); y.merge(VectorClock(c))
    z = VectorClock(a); z.merge(y)
    assert x == z


# ---------------------------------------------------------------------------
# Notice tables
# ---------------------------------------------------------------------------
@given(versions=st.lists(st.integers(min_value=1, max_value=1000),
                         min_size=1, max_size=50))
def test_bounded_notice_table_keeps_max(versions):
    t = NoticeTable()
    for v in versions:
        t.add(Notice(42, v))
    assert t.required_scalar(42) == max(versions)
    assert t.stored_notices == 1


@given(batch=st.lists(
    st.tuples(st.integers(min_value=1, max_value=5),
              st.integers(min_value=1, max_value=100)),
    min_size=1, max_size=40,
))
def test_notice_delta_never_resends(batch):
    t = NoticeTable()
    seen = {}
    sent = {}
    for gid, v in batch:
        t.add(Notice(gid, v))
        for n in t.delta_since(seen):
            # A delta entry must be strictly newer than anything
            # previously delivered for that gid.
            assert n.version > sent.get(n.gid, 0)
            sent[n.gid] = n.version
    # After draining, the snapshot equals the table.
    assert t.delta_since(seen) == []
    for gid, v in batch:
        assert seen[gid] == t.required_scalar(gid)


@given(a=clock_entries, b=clock_entries)
def test_vector_clock_dominance_antisymmetric(a, b):
    x, y = VectorClock(a), VectorClock(b)
    if x.dominates(y) and y.dominates(x):
        assert x == y


@given(a=clock_entries, ticks=st.lists(
    st.integers(min_value=0, max_value=8), max_size=20))
def test_vector_clock_tick_strictly_monotonic(a, ticks):
    x = VectorClock(a)
    for tid in ticks:
        before = x.get(tid)
        assert x.tick(tid) == before + 1
    assert x.wire_size() == 4 + 8 * len(x)


@given(a=clock_entries, tid=st.integers(min_value=0, max_value=8),
       value=st.integers(min_value=0, max_value=100))
def test_vector_clock_set_never_decreases(a, value, tid):
    x = VectorClock(a)
    if value < x.get(tid):
        import pytest
        with pytest.raises(ValueError):
            x.set(tid, value)
    else:
        x.set(tid, value)
        assert x.get(tid) == value


@given(batch=st.lists(
    st.tuples(st.integers(min_value=1, max_value=4),    # gid
              st.integers(min_value=0, max_value=3),    # writer
              st.integers(min_value=1, max_value=50)),  # interval
    min_size=1, max_size=40,
))
def test_bounded_vector_notices_one_per_gid_writer(batch):
    """Bounded vector storage: at most one notice per (CU, writer)."""
    t = NoticeTable()
    for gid, writer, interval in batch:
        t.add(Notice(gid, interval, writer))
    pairs = {(gid, w) for gid, w, _ in batch}
    assert t.stored_notices == len(pairs)
    for gid, writer in pairs:
        best = max(i for g, w, i in batch if (g, w) == (gid, writer))
        assert t.required_vector(gid)[writer] == best


@given(batch=st.lists(
    st.tuples(st.integers(min_value=1, max_value=4),
              st.integers(min_value=1, max_value=50)),
    min_size=1, max_size=40,
))
def test_full_mode_log_grows_per_add(batch):
    """HLRC 'full' mode keeps the whole uncollected log (the storage
    cost MTS's bounded mode eliminates)."""
    t = NoticeTable(mode="full")
    for gid, v in batch:
        t.add(Notice(gid, v))
    assert t.stored_notices == len(batch)
    assert t.storage_bytes() > 0


@given(batch=st.lists(
    st.tuples(st.integers(min_value=1, max_value=3),
              st.integers(min_value=0, max_value=2),
              st.integers(min_value=1, max_value=30)),
    min_size=1, max_size=30,
))
def test_vector_delta_never_resends(batch):
    t = NoticeTable()
    seen = {}
    sent = {}
    for gid, writer, interval in batch:
        t.add(Notice(gid, interval, writer))
        for n in t.delta_since_vector(seen):
            assert n.version > sent.get((n.gid, n.writer), 0)
            sent[(n.gid, n.writer)] = n.version
    assert t.delta_since_vector(seen) == []


@given(versions=st.lists(st.integers(min_value=1, max_value=100),
                         min_size=1, max_size=30),
       gid=st.integers(min_value=1, max_value=3))
def test_add_all_returns_exactly_advancing_notices(versions, gid):
    t = NoticeTable()
    advanced = t.add_all(Notice(gid, v) for v in versions)
    best = 0
    expect = []
    for v in versions:
        if v > best:
            expect.append(v)
            best = v
    assert [n.version for n in advanced] == expect


# ---------------------------------------------------------------------------
# Lock queues
# ---------------------------------------------------------------------------
@given(reqs=st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),   # node
              st.integers(min_value=1, max_value=10)), # priority
    min_size=1, max_size=20,
))
def test_lock_queue_priority_then_fifo_invariant(reqs):
    token = LockToken(1)
    for i, (node, prio) in enumerate(reqs):
        token.enqueue(LockRequest(node, thread_id=i, priority=prio))
    out = []
    while True:
        r = token.pop_next()
        if r is None:
            break
        out.append(r)
    # Priorities non-increasing; FIFO (by seq) within equal priority.
    for a, b in zip(out, out[1:]):
        assert a.priority > b.priority or (
            a.priority == b.priority and a.seq < b.seq
        )
    assert len(out) == len(reqs)


# ---------------------------------------------------------------------------
# Serialization and diffs
# ---------------------------------------------------------------------------
class _FakeObj:
    def __init__(self, fields):
        self.class_name = "T"
        self.fields = fields
        self.header = None


class _NullResolver:
    def gid_for(self, ref):  # pragma: no cover - no refs generated
        raise AssertionError

    def class_id_for(self, name):  # pragma: no cover
        raise AssertionError

    def class_name_for(self, cid):  # pragma: no cover
        raise AssertionError

    def replica_for(self, gid, name):  # pragma: no cover
        raise AssertionError


_value_for_kind = {
    K_INT: st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    K_DOUBLE: st.floats(allow_nan=False),
    K_STR: st.one_of(st.none(), st.text(max_size=30)),
}


@st.composite
def spec_and_fields(draw):
    kinds = draw(st.lists(
        st.sampled_from([K_INT, K_DOUBLE, K_STR]), min_size=1, max_size=8
    ))
    values = [draw(_value_for_kind[k]) for k in kinds]
    return ClassSpec("T", tuple(kinds)), values


@given(sf=spec_and_fields())
def test_serializer_roundtrip(sf):
    spec, values = sf
    obj = _FakeObj(list(values))
    data = serialize_object(obj, spec, _NullResolver())
    out = _FakeObj([None] * len(values))
    deserialize_into(out, spec, data, _NullResolver())
    assert out.fields == values


@given(sf=spec_and_fields(), data=st.data())
def test_diff_patch_roundtrip(sf, data):
    spec, values = sf
    obj = _FakeObj(list(values))
    twin = make_twin(obj)
    # Mutate a random subset of slots.
    for i, kind in enumerate(spec.kinds):
        if data.draw(st.booleans()):
            obj.fields[i] = data.draw(_value_for_kind[kind])
    diff = compute_diff(obj, twin, spec, _NullResolver())
    master = _FakeObj(list(values))
    if diff is not None:
        apply_diff(master, spec, diff, _NullResolver())
    assert master.fields == obj.fields


# ---------------------------------------------------------------------------
# End-to-end LRC coherence on randomized workloads
# ---------------------------------------------------------------------------
_COHERENCE_SRC = """
class Cell {{ int v; }}
class W extends Thread {{
    Cell[] cells;
    int reps;
    int salt;
    W(Cell[] cells, int reps, int salt) {{
        this.cells = cells; this.reps = reps; this.salt = salt;
    }}
    void run() {{
        for (int i = 0; i < reps; i++) {{
            Cell c = cells[(i + salt) % cells.length];
            synchronized (c) {{ c.v += 1; }}
        }}
    }}
}}
class Main {{
    static int main() {{
        int ncells = {ncells};
        int k = {threads};
        Cell[] cells = new Cell[ncells];
        for (int i = 0; i < ncells; i++) {{ cells[i] = new Cell(); }}
        W[] ts = new W[k];
        for (int i = 0; i < k; i++) {{
            ts[i] = new W(cells, {reps}, i);
            ts[i].start();
        }}
        for (int i = 0; i < k; i++) {{ ts[i].join(); }}
        int total = 0;
        for (int i = 0; i < ncells; i++) {{ total += cells[i].v; }}
        return total;
    }}
}}
"""


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    ncells=st.integers(min_value=1, max_value=5),
    threads=st.integers(min_value=1, max_value=6),
    reps=st.integers(min_value=1, max_value=25),
    nodes=st.integers(min_value=1, max_value=4),
)
def test_lrc_counter_coherence(ncells, threads, reps, nodes):
    """No increment is ever lost, for any cluster layout: every write of
    a releaser's happens-before past is visible to the next acquirer."""
    from repro.runtime import run_distributed

    src = _COHERENCE_SRC.format(ncells=ncells, threads=threads, reps=reps)
    report = run_distributed(source=src, num_nodes=nodes)
    assert report.result == threads * reps
