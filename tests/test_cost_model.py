"""Cost-model tests: brand tables, profiles, scaling."""

import pytest

from repro.sim import BRANDS, IBM, SUN, CostModel, get_brand
from repro.sim import cost_model as cm
from repro.sim.cost_model import IBM_APP, PROFILE_APP, PROFILE_MICRO


def test_brands_registered():
    assert set(BRANDS) == {"sun", "ibm"}
    assert get_brand("sun") is SUN
    assert get_brand("ibm") is IBM


def test_unknown_brand_rejected():
    with pytest.raises(KeyError):
        get_brand("oracle")
    with pytest.raises(KeyError):
        get_brand("sun", profile="bogus")


def test_missing_key_rejected():
    with pytest.raises(KeyError):
        SUN["no_such_cost"]


def test_table1_micro_ratio_calibration():
    """The micro tables encode the paper's Table 1 slowdowns."""
    for brand, lo, hi in ((SUN, 2.0, 6.0), (IBM, 11.0, 56.0)):
        for key in (cm.FIELD_READ, cm.FIELD_WRITE, cm.ARRAY_READ,
                    cm.ARRAY_WRITE):
            ratio = brand[cm.checked(key)] / brand[key]
            assert lo <= ratio <= hi, (brand.brand, key, ratio)


def test_ibm_micro_originals_much_cheaper_than_sun():
    for key in (cm.FIELD_READ, cm.FIELD_WRITE, cm.STATIC_READ,
                cm.ARRAY_READ):
        assert IBM[key] * 4 < SUN[key]


def test_app_profile_slowdowns_in_paper_band():
    """§6.2: application-level slowdown 1.5-6 (sun), 3-5.5 (ibm)."""
    for brand in (get_brand("sun", PROFILE_APP), get_brand("ibm", PROFILE_APP)):
        for key in (cm.FIELD_READ, cm.FIELD_WRITE, cm.ARRAY_READ,
                    cm.ARRAY_WRITE):
            ratio = brand[cm.checked(key)] / brand[key]
            assert 1.5 <= ratio <= 6.0, (brand.brand, key, ratio)


def test_app_profile_only_differs_for_ibm_originals():
    assert get_brand("sun", PROFILE_APP) is SUN
    for key in (cm.checked(cm.FIELD_READ), cm.ARITH, cm.COMM_FIXED_NS,
                cm.SHARED_ACQUIRE):
        assert IBM_APP[key] == IBM[key]
    assert IBM_APP[cm.FIELD_READ] > IBM[cm.FIELD_READ]


def test_scaled_multiplies_instructions_only():
    scaled = SUN.scaled(10)
    assert scaled[cm.ARITH] == SUN[cm.ARITH] * 10
    assert scaled[cm.FIELD_READ] == SUN[cm.FIELD_READ] * 10
    assert scaled[cm.checked(cm.ARRAY_WRITE)] == SUN[cm.checked(cm.ARRAY_WRITE)] * 10
    # Communication and sync handlers are per-event constants.
    for key in (cm.COMM_FIXED_NS, cm.COMM_PER_BYTE_NS, cm.PROTO_HANDLER_NS,
                cm.SERIALIZE_PER_BYTE_NS, cm.MONITOR_ENTER, cm.MONITOR_EXIT,
                cm.LOCAL_LOCK_OP, cm.SHARED_ACQUIRE, cm.SHARED_RELEASE):
        assert scaled[key] == SUN[key], key


def test_scaled_identity_and_validation():
    assert SUN.scaled(1) is SUN
    with pytest.raises(ValueError):
        SUN.scaled(0)


def test_scaling_preserves_table1_ratios():
    scaled = IBM.scaled(123)
    for key in (cm.FIELD_READ, cm.ARRAY_READ):
        assert (
            scaled[cm.checked(key)] / scaled[key]
            == IBM[cm.checked(key)] / IBM[key]
        )


def test_table2_calibration():
    """local < original < shared, both brands (§4.4 / Table 2)."""
    for brand in (SUN, IBM):
        assert brand[cm.LOCAL_LOCK_OP] < brand[cm.MONITOR_ENTER]
        assert brand[cm.MONITOR_ENTER] < brand[cm.SHARED_ACQUIRE]


def test_comm_calibration_close_to_table3():
    """65000 B one-way ~6 ms on 100 Mbit (Table 3)."""
    for brand in (SUN, IBM):
        lat = brand[cm.COMM_FIXED_NS] + 65_000 * brand[cm.COMM_PER_BYTE_NS]
        assert 5e6 < lat < 8e6
    # IBM's fixed cost is much smaller (0.09 vs 0.64 ms at 65 B).
    assert IBM[cm.COMM_FIXED_NS] * 3 < SUN[cm.COMM_FIXED_NS]
