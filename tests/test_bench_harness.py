"""Tests for the benchmark harness utilities (formatting + micro
program generation)."""

import os

import pytest

from repro.bench import (
    AccessLatencyRow,
    AcquireCostRow,
    FigureResult,
    SweepPoint,
    access_micro_source,
    format_figure,
    format_table1,
    format_table2,
    format_table3,
    measure_comm_latency,
)
from repro.bench.micro import sync_micro_source
from repro.bench.tables import RESULTS_DIR, emit
from repro.lang import compile_source
from repro.runtime import run_original


# ---------------------------------------------------------------------------
# Micro program generation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", [
    "field read", "field write", "static read", "static write",
    "array read", "array write",
])
def test_access_micros_compile_and_run(kind):
    for baseline in (False, True):
        src = access_micro_source(kind, iters=10, baseline=baseline)
        report = run_original(source=src)
        assert report.result is not None


def test_sync_micro_compiles():
    src = sync_micro_source("synchronized (o) { s += 1; }", iters=5)
    report = run_original(source=src)
    assert report.result == 5


def test_unknown_micro_kind_rejected():
    with pytest.raises(KeyError):
        access_micro_source("register read")


# ---------------------------------------------------------------------------
# Formatters
# ---------------------------------------------------------------------------
def test_format_table1_layout():
    rows = {
        "sun": [AccessLatencyRow("field read", "sun", 84.0, 182.0)],
        "ibm": [AccessLatencyRow("field read", "ibm", 7.0, 163.0)],
    }
    text = format_table1(rows)
    assert "field read" in text
    assert "2.17" in text
    assert "23.29" in text


def test_format_table2_layout():
    rows = {
        "sun": [AcquireCostRow("original", "sun", 1368.0),
                AcquireCostRow("local object", "sun", 404.0)],
    }
    text = format_table2(rows)
    assert "original" in text and "local object" in text
    assert "1368.0" in text


def test_format_table3_layout():
    rows = {"sun": measure_comm_latency("sun")}
    text = format_table3(rows)
    assert "65000" in text
    lines = text.splitlines()
    assert len(lines) == 5  # header + 4 sizes


def test_format_figure_layout():
    res = FigureResult(
        app="demo", brand="sun", baseline_time_s=10.0, baseline_result=42,
        points=[SweepPoint(1, 12.0, 0.83), SweepPoint(2, 6.0, 1.67)],
    )
    text = format_figure([res])
    assert "demo / sun" in text
    assert "0.83" in text and "1.67" in text
    assert "result = 42" in text


def test_emit_persists_under_results(tmp_path, monkeypatch):
    import repro.bench.tables as tables

    monkeypatch.setattr(tables, "RESULTS_DIR", str(tmp_path))
    tables.emit("unit_test_artifact", "hello table")
    out = tmp_path / "unit_test_artifact.txt"
    assert out.read_text() == "hello table\n"


def test_results_dir_points_into_benchmarks():
    assert RESULTS_DIR.endswith(os.path.join("benchmarks", "results"))
