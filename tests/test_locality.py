"""Adaptive-locality subsystem: migration handoff, prefetch,
aggregation, serialization round-trips for migrated units, tracer
event kinds, and the per-instant single-home monitor check."""

import pytest

from repro.check import InvariantMonitor, SingleCopyOracle, run_check
from repro.check.oracle import normalize_slots
from repro.check.runner import app_source, parse_locality
from repro.dsm.objectstate import ObjState
from repro.lang import compile_source
from repro.locality import AccessProfiler
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig
from repro.runtime.tracing import DsmTracer

# One remote thread hammers a master homed on node 0: the sole-writer
# migration pattern.  A second, later writer then hits the stale
# directory and exercises the old home's forwarding path.
SOLE_WRITER_SRC = """
class Counter { int v; }
class W extends Thread {
    Counter c;
    int reps;
    W(Counter c, int reps) { this.c = c; this.reps = reps; }
    void run() {
        for (int i = 0; i < reps; i++) {
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        W a = new W(c, 6);
        a.start(); a.join();
        W b = new W(c, 6);
        b.start(); b.join();
        return c.v;
    }
}
"""

# Same pattern over an array-wrapper unit (element writes under a lock
# object, so the array itself is the migrating coherency unit).  Two
# sequential writer threads: round-robin puts the first on the home
# node and the second remote, so the second is the sole remote writer.
ARRAY_WRITER_SRC = """
class Lock { int pad; }
class W extends Thread {
    int[] a;
    Lock l;
    int mul;
    W(int[] a, Lock l, int mul) { this.a = a; this.l = l; this.mul = mul; }
    void run() {
        for (int i = 0; i < 6; i++) {
            synchronized (l) { a[i] = i * mul; }
        }
    }
}
class Main {
    static int main() {
        int[] a = new int[6];
        Lock l = new Lock();
        W u = new W(a, l, 3);
        u.start(); u.join();
        W w = new W(a, l, 7);
        w.start(); w.join();
        int s = 0;
        for (int i = 0; i < 6; i++) s += a[i];
        return s;
    }
}
"""

# Writer that paces its releases with local compute, so the migration
# grant lands mid-run and the remaining releases apply locally.
PACED_WRITER_SRC = """
class Counter { int v; }
class W extends Thread {
    Counter c;
    W(Counter c) { this.c = c; }
    void run() {
        for (int i = 0; i < 12; i++) {
            synchronized (c) { c.v += 1; }
            int t = 0;
            for (int j = 0; j < 20000; j++) t = t + j;
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        W a = new W(c);
        a.start(); a.join();
        W b = new W(c);
        b.start(); b.join();
        return c.v;
    }
}
"""


def _runtime(src, nodes=2, **cfg):
    classfiles = compile_source(src)
    rewritten = rewrite_application(classfiles)
    cfg.setdefault("scheduler", "round-robin")  # spread threads over nodes
    return JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=nodes, **cfg))


def _checked_run(rt):
    monitor = InvariantMonitor.attach(rt)
    oracle = SingleCopyOracle.attach(rt)
    report = rt.run()
    monitor.finalize()
    oracle.finalize()
    assert monitor.ok, monitor.summary()
    assert oracle.ok, oracle.summary()
    return report


# ---------------------------------------------------------------------------
# Knobs and policy plumbing
# ---------------------------------------------------------------------------
def test_knobs_off_attaches_nothing():
    rt = _runtime(SOLE_WRITER_SRC)
    assert rt.locality is None
    report = rt.run()
    assert report.result == 12
    assert report.locality is None


def test_parse_locality_specs():
    assert parse_locality("") == {
        "locality_migration": False,
        "locality_prefetch": False,
        "locality_aggregation": False,
    }
    assert parse_locality("all")["locality_migration"] is True
    assert parse_locality("all")["locality_aggregation"] is True
    spec = parse_locality("migration, prefetch")
    assert spec["locality_migration"] and spec["locality_prefetch"]
    assert not spec["locality_aggregation"]
    with pytest.raises(ValueError):
        parse_locality("migration,warp")


def test_profiler_requires_sole_writer_over_threshold():
    prof = AccessProfiler(window=4)
    prof.note_diff(7, node=1)
    prof.note_diff(7, node=1)
    assert not prof.should_migrate(7, writer=1, threshold=3)
    prof.note_diff(7, node=1)
    assert prof.should_migrate(7, writer=1, threshold=3)
    # Any second writer in the window pins the unit.
    prof.note_diff(7, node=2)
    assert not prof.should_migrate(7, writer=1, threshold=3)
    # Fetches are not writes and never block migration.
    prof2 = AccessProfiler(window=8)
    for _ in range(3):
        prof2.note_diff(9, node=1)
    prof2.note_fetch(9, node=2)
    assert prof2.should_migrate(9, writer=1, threshold=3)
    prof2.reset(9)
    assert not prof2.should_migrate(9, writer=1, threshold=3)


# ---------------------------------------------------------------------------
# Migration end-to-end (object + array units), oracle-verified
# ---------------------------------------------------------------------------
def test_object_unit_migrates_to_sole_writer():
    rt = _runtime(SOLE_WRITER_SRC, locality_migration=True)
    report = _checked_run(rt)
    assert report.result == 12
    loc = report.locality
    assert loc is not None and loc["migrations_out"] >= 1
    # The second writer's first diff hit the stale directory and was
    # forwarded by the old home (then redirect gossip corrected it).
    assert loc["fwd_diffs"] >= 1
    # The migrated master lives where the directory says it lives.
    gid, (home, _epoch) = next(iter(rt.locality.migrations.items()))
    obj = rt.workers[home].dsm.cache.get(gid)
    assert obj is not None and obj.header.state == ObjState.HOME


def test_array_unit_migrates_and_round_trips():
    rt = _runtime(ARRAY_WRITER_SRC, locality_migration=True,
                  locality_migration_threshold=2)
    report = _checked_run(rt)
    assert report.result == sum(i * 7 for i in range(6))
    loc = report.locality
    assert loc is not None and loc["migrations_out"] >= 1


def test_migration_beats_baseline_on_messages():
    base = _runtime(PACED_WRITER_SRC).run()
    rt = _runtime(PACED_WRITER_SRC, locality_migration=True)
    report = rt.run()
    assert report.result == base.result == 24
    # With paced releases the grant lands mid-run, the writer's later
    # releases apply locally, and total traffic drops below baseline.
    assert report.locality["migrations_out"] >= 1
    assert report.net.messages < base.net.messages


# ---------------------------------------------------------------------------
# Serialization round-trips for migrating units
# ---------------------------------------------------------------------------
def _grant_round_trip(src, pick):
    """Run an app, then migrate one finished master between two live
    engines through the real grant serialize/install path and compare
    the unit slot-for-slot."""
    rt = _runtime(src)
    rt.run()
    d0, d1 = rt.workers[0].dsm, rt.workers[1].dsm
    gid, obj = pick(d0)
    before = normalize_slots(
        obj.data if hasattr(obj, "data") else obj.fields)
    version = obj.header.version
    unit = d0._loc_grant_unit(gid)
    assert unit is not None and unit["version"] == version
    # The old home demoted itself as part of serializing the grant.
    assert obj.header.state == ObjState.INVALID
    d1.ft_install_master(unit)
    installed = d1.cache.get(gid)
    assert installed.header.state == ObjState.HOME
    assert installed.header.version == version
    after = normalize_slots(
        installed.data if hasattr(installed, "data") else installed.fields)
    assert after == before


def _pick_home(dsm, want_array):
    for gid, obj in sorted(dsm.cache.items()):
        if gid in dsm._regions or obj.header is None:
            continue
        if obj.header.state != ObjState.HOME:
            continue
        if hasattr(obj, "data") == want_array:
            return gid, obj
    raise AssertionError("no suitable master found")


def test_grant_serialization_round_trip_object():
    _grant_round_trip(SOLE_WRITER_SRC,
                      lambda dsm: _pick_home(dsm, want_array=False))


def test_grant_serialization_round_trip_array():
    _grant_round_trip(ARRAY_WRITER_SRC,
                      lambda dsm: _pick_home(dsm, want_array=True))


def test_migration_with_in_flight_diff_to_old_home():
    """A diff addressed to the old home after the unit migrated is
    forwarded, applied at the new home, and acked exactly once — the
    writer's fence must fully drain."""
    rt = _runtime(SOLE_WRITER_SRC, nodes=3, locality_migration=True,
                  net_jitter_ns=2_000_000, seed=3)
    report = _checked_run(rt)  # monitor checks _outstanding_acks == 0
    assert report.result == 12
    loc = report.locality
    assert loc["migrations_out"] >= 1 and loc["fwd_diffs"] >= 1


# ---------------------------------------------------------------------------
# Prefetch + aggregation pay off on tsp at checking scale
# ---------------------------------------------------------------------------
def test_prefetch_cuts_fetches_on_tsp():
    src = app_source("tsp")
    base = _runtime(src, nodes=3).run()
    rt = _runtime(src, nodes=3, locality_prefetch=True)
    report = _checked_run(rt)
    assert report.result == base.result
    loc = report.locality
    assert loc["prefetch_hits"] >= 1
    assert report.total_dsm().fetches < base.total_dsm().fetches


def test_aggregation_coalesces_frames_on_tsp():
    src = app_source("tsp")
    base = _runtime(src, nodes=3).run()
    rt = _runtime(src, nodes=3, locality_aggregation=True)
    report = _checked_run(rt)
    assert report.result == base.result
    loc = report.locality
    assert loc["agg_frames"] >= 1
    assert loc["agg_subframes"] >= 2 * loc["agg_frames"]
    assert report.net.messages <= base.net.messages
    assert report.net.bytes <= base.net.bytes


# ---------------------------------------------------------------------------
# Tracer: locality event kinds + summary()
# ---------------------------------------------------------------------------
def test_tracer_summary_counts_locality_events():
    src = app_source("tsp")
    rt = _runtime(src, nodes=3, locality_migration=True,
                  locality_prefetch=True, locality_aggregation=True)
    tracer = DsmTracer.attach(rt)
    rt.run()
    summary = tracer.summary()
    assert summary == dict(sorted(tracer.counts().items()))
    assert summary.get("locality.migrate", 0) >= 1
    assert summary.get("locality.prefetch", 0) >= 1
    assert summary.get("locality.aggregate", 0) >= 1


def test_tracer_summary_without_locality():
    rt = _runtime(SOLE_WRITER_SRC)
    tracer = DsmTracer.attach(rt)
    rt.run()
    summary = tracer.summary()
    assert summary and all(isinstance(v, int) for v in summary.values())
    assert not any(k.startswith("locality.") for k in summary)


# ---------------------------------------------------------------------------
# Monitor: per-instant single-home across migrations
# ---------------------------------------------------------------------------
def test_monitor_catches_double_master_at_install():
    rt = _runtime(SOLE_WRITER_SRC)
    monitor = InvariantMonitor.attach(rt)
    rt.run()
    d0, d1 = rt.workers[0].dsm, rt.workers[1].dsm
    gid, _obj = _pick_home(d0, want_array=False)
    unit = d0.ft_serialize_unit(gid)
    # BUG under test: install a second master without demoting the
    # first (a grant handoff that skipped the demote).
    d1.ft_install_master(unit)
    assert any(v.kind == "single-home" for v in monitor.violations), \
        monitor.summary()


def test_monitor_accepts_clean_migration_sweep():
    report = run_check(app="tsp", seeds=3, locality="all")
    assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# Recovery: kill a node after units migrated onto / away from it
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("app", ["tsp", "series"])
def test_kill_random_with_locality(app):
    report = run_check(app=app, seeds=4, kill="random", locality="all")
    assert report.ok, report.summary()
