"""Flight recorder + live telemetry on the multiprocess backend.

The expensive guarantees: a worker SIGKILLed from outside leaves a
parseable flight dump carrying the dead node's last recorded events;
the wall-clock plane measures real socket RTTs without perturbing any
deterministic observable; and the live-stats shipping cadence survives
a full run."""

from __future__ import annotations

import json
import os
import signal

from repro.check.runner import DEFAULT_JITTER_NS, app_source
from repro.lang import compile_source
from repro.obs.flight import validate_flight_dump
from repro.rewriter import rewrite_application
from repro.runtime.config import RuntimeConfig
from repro.runtime.javasplit import JavaSplitRuntime
from repro.sim.engine import NS_PER_MS


def build_runtime(backend: str, **overrides) -> JavaSplitRuntime:
    config = RuntimeConfig(
        num_nodes=3,
        net_jitter_ns=DEFAULT_JITTER_NS,
        seed=0,
        transport_backend=backend,
        **overrides,
    )
    rewritten = rewrite_application(compile_source(app_source("series")))
    return JavaSplitRuntime(rewritten, config)


def test_sigkilled_worker_leaves_flight_dump(tmp_path, proc_guard):
    """kill -9 on a worker process: the master's death detection must
    dump the flight state, including the killed node's last events as
    mirrored over the ctrl plane before the kill."""
    rt = build_runtime("proc", ft_enabled=True, reliable_transport=True,
                       obs_flight_recorder=True, obs_wallclock=True,
                       obs_live_stats=True, obs_live_period_s=0.05,
                       obs_flight_dir=str(tmp_path))

    def murder():
        os.kill(rt.network.proc_pids[2], signal.SIGKILL)

    rt.engine.schedule_at(5 * NS_PER_MS, murder)
    report = rt.run()

    assert report.ft["dead_nodes"] == [2]
    assert report.flight_dumps, "SIGKILL must produce a flight dump"
    path = report.flight_dumps[0]
    assert path.startswith(str(tmp_path))
    doc = json.loads(open(path).read())
    assert validate_flight_dump(doc) == []
    assert doc["reason"] == "sigkill"
    assert doc["detail"]["node"] == 2
    assert doc["backend"] == "proc"
    # The killed node appears with master-side events; its worker-side
    # ring arrives only if a live flush beat the kill, so don't require
    # it — but whatever arrived must be well-formed (validated above).
    killed = doc["nodes"]["2"]
    assert killed["events"], "master-side ring for the dead node is empty"
    assert all(ev["kind"] for ev in killed["events"])
    # And the run still recovered to the sim-backend result.
    ref = build_runtime("sim").run()
    assert report.result == ref.result


def test_orderly_shutdown_produces_no_dump(tmp_path, proc_guard):
    rt = build_runtime("proc", obs_flight_recorder=True,
                       obs_flight_dir=str(tmp_path))
    report = rt.run()
    assert report.flight_dumps == []
    assert list(tmp_path.iterdir()) == []


def test_proc_wallclock_measures_without_perturbing(proc_guard):
    """Knobs ON on the proc backend: real RTT / codec / loop-lag
    histograms fill up, while every deterministic observable stays
    exactly equal to the knobs-off sim run."""
    sim = build_runtime("sim").run()
    rt = build_runtime("proc", obs_wallclock=True,
                       obs_flight_recorder=True, obs_live_stats=True,
                       obs_live_period_s=0.05)
    report = rt.run()

    assert report.result == sim.result
    assert report.simulated_ns == sim.simulated_ns
    assert report.net.messages == sim.net.messages
    assert report.net.bytes == sim.net.bytes
    assert report.net.by_type == sim.net.by_type

    wall = rt.obs.wallclock
    assert wall is not None
    rtt = wall.histogram("net.rtt_ns")
    assert rtt.count > 0, "no socket round-trips were timed"
    assert rtt.min > 0
    # Worker-shipped histograms (cumulative, final CTRL_STATS flush).
    lag = wall.histogram("worker.loop_lag_ns")
    assert lag.count > 0, "workers shipped no loop-lag samples"
    enc = wall.histogram("wire.encode_ns")
    assert enc.count > 0, "master codec timings missing"
    assert wall.samples, "no sim/wall correlation samples recorded"
    by_node = wall.by_node()
    assert by_node, "per-node compact view is empty"


def test_wire_error_dump_hook_fires(tmp_path):
    """The master's wire-error path routes through the flight dumper."""
    rt = build_runtime("sim", obs_flight_recorder=True,
                       obs_flight_dir=str(tmp_path))
    rt.run()
    dumped = rt.obs.dump_flight("wire-error", {"detail": "synthetic"})
    assert dumped is not None
    doc = json.loads(open(dumped).read())
    assert validate_flight_dump(doc) == []
    assert doc["reason"] == "wire-error"
