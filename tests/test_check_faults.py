"""Fault injector + reliable transport: seeded faults are deterministic
and fully masked by the ARQ layer."""

from types import SimpleNamespace

import pytest

from repro.check import FaultInjector, FaultPlan
from repro.net import SimNetwork, Transport
from repro.sim import NS_PER_MS, SUN, SimEngine


def _pair(reliable=True, jitter_ns=0, seed=0):
    eng = SimEngine()
    net = SimNetwork(eng, jitter_ns=jitter_ns, seed=seed)
    ta = Transport(net, 0, SUN, reliable=reliable)
    tb = Transport(net, 1, SUN, reliable=reliable)
    return eng, net, ta, tb


def _stream(ta, tb, eng, n=60):
    got = []
    tb.on("seq", lambda m: got.append(m.payload["i"]))
    for i in range(n):
        ta.send(1, "seq", {"i": i})
    eng.run_until_idle()
    return got


# ---------------------------------------------------------------------------
# FaultPlan parsing
# ---------------------------------------------------------------------------
def test_fault_plan_from_spec():
    plan = FaultPlan.from_spec("drop,dup,delay,reorder", seed=7, rate=0.1)
    assert plan.seed == 7
    assert plan.drop_rate == plan.dup_rate == plan.delay_rate == 0.1
    assert plan.reorder_rate >= 0.1
    assert plan.lossy


def test_fault_plan_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_spec("drop,frobnicate")


def test_fault_plan_detach_needs_explicit_fields():
    with pytest.raises(ValueError, match="detach"):
        FaultPlan.from_spec("detach")
    plan = FaultPlan(detach_node=1, detach_at_ns=5 * NS_PER_MS)
    assert plan.lossy


def test_lossy_plan_requires_reliable_transport():
    runtime = SimpleNamespace(
        config=SimpleNamespace(reliable_transport=False),
        network=None,
    )
    with pytest.raises(ValueError, match="reliable_transport"):
        FaultInjector.attach(runtime, FaultPlan(drop_rate=0.1))


# ---------------------------------------------------------------------------
# Masking: every fault kind, stream delivered intact and in order
# ---------------------------------------------------------------------------
def test_drops_masked_by_retransmission():
    eng, net, ta, tb = _pair()
    inj = FaultInjector(net, FaultPlan(seed=3, drop_rate=0.2))
    got = _stream(ta, tb, eng)
    assert got == list(range(60))
    assert inj.stats.dropped > 0
    assert ta.stats.retransmissions > 0
    assert ta.quiesced() and tb.quiesced()


def test_duplicates_masked_by_seq_numbers():
    eng, net, ta, tb = _pair()
    inj = FaultInjector(net, FaultPlan(seed=5, dup_rate=0.3))
    got = _stream(ta, tb, eng)
    assert got == list(range(60))
    assert inj.stats.duplicated > 0
    assert tb.stats.dup_dropped > 0


def test_delay_and_reorder_masked_by_reassembly():
    # Pure delay/reorder is loss-free, so even the unreliable transport's
    # sequence numbers restore FIFO.
    eng, net, ta, tb = _pair(reliable=False)
    inj = FaultInjector(net, FaultPlan(
        seed=11, delay_rate=0.3, reorder_rate=0.5,
        delay_ns=6 * NS_PER_MS))
    got = _stream(ta, tb, eng)
    assert got == list(range(60))
    assert inj.stats.delayed > 0 and inj.stats.reordered > 0


def test_all_faults_together_reliable():
    eng, net, ta, tb = _pair()
    inj = FaultInjector(net, FaultPlan(
        seed=1, drop_rate=0.1, dup_rate=0.1,
        delay_rate=0.2, reorder_rate=0.3))
    got = _stream(ta, tb, eng)
    assert got == list(range(60))
    assert inj.stats.seen > 60  # acks + retransmissions pass through too


def test_loopback_never_faulted():
    eng, net, ta, _tb = _pair()
    inj = FaultInjector(net, FaultPlan(seed=0, drop_rate=1.0))
    got = []
    ta.on("self", lambda m: got.append(m.payload["i"]))
    for i in range(5):
        ta.send(0, "self", {"i": i})
    eng.run_until_idle()
    assert got == list(range(5))
    assert inj.stats.seen == 0


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def test_same_seed_same_faults():
    outcomes = []
    for _ in range(2):
        eng, net, ta, tb = _pair()
        inj = FaultInjector(net, FaultPlan(
            seed=42, drop_rate=0.15, dup_rate=0.15, reorder_rate=0.3))
        _stream(ta, tb, eng)
        outcomes.append((inj.stats.dropped, inj.stats.duplicated,
                         inj.stats.reordered, eng.now))
    assert outcomes[0] == outcomes[1]


def test_different_seed_different_schedule():
    ends = set()
    for seed in range(4):
        eng, net, ta, tb = _pair()
        FaultInjector(net, FaultPlan(
            seed=seed, drop_rate=0.15, reorder_rate=0.3))
        _stream(ta, tb, eng)
        ends.add(eng.now)
    assert len(ends) > 1


# ---------------------------------------------------------------------------
# Detach: the event loop never wedges, accounting stays consistent
# ---------------------------------------------------------------------------
def test_detach_mid_stream_gives_up_cleanly():
    eng, net, ta, tb = _pair()
    inj = FaultInjector(net, FaultPlan(seed=2))
    got = []
    tb.on("seq", lambda m: got.append(m.payload["i"]))
    for i in range(20):
        ta.send(1, "seq", {"i": i})
    eng.run_until_idle()
    assert got == list(range(20))
    # Unplug the receiver with the second batch still in flight.
    for i in range(20, 40):
        ta.send(1, "seq", {"i": i})
    inj.detach_now(1)
    eng.run_until_idle()  # terminates: retries are bounded
    assert inj.stats.detached == [1]
    assert got == list(range(20))
    # Sender either dropped at send time (peer gone) or abandoned after
    # max retries; nothing is silently lost from the accounting.
    assert ta.stats.gave_up > 0 or ta.stats.to_dead_dropped > 0
    # NetStats stays coherent: the in-flight frames to the dead node
    # were recorded as dropped, not silently vanished.
    assert net.stats.dropped >= 20
    assert net.stats.messages >= 40


def test_detach_now_is_idempotent():
    eng, net, ta, tb = _pair()
    inj = FaultInjector(net, FaultPlan(seed=0))
    inj.detach_now(1)
    inj.detach_now(1)
    assert inj.stats.detached == [1]
    assert not net.is_attached(1)


def test_injector_detach_restores_send_path():
    eng, net, ta, tb = _pair()
    inj = FaultInjector(net, FaultPlan(seed=0, drop_rate=1.0))
    inj.detach_injector()
    got = _stream(ta, tb, eng, n=5)
    assert got == list(range(5))  # no drops once restored
    assert inj.stats.dropped == 0
