"""End-to-end distributed execution tests.

The gold standard throughout: a rewritten program on N simulated nodes
must produce exactly the result of the original program on one JVM.
"""

import pytest

from repro.runtime import (
    DeadlockError,
    RuntimeConfig,
    run_distributed,
    run_original,
)


def both(source, nodes=2, **kw):
    """Run original and distributed; assert identical results."""
    base = run_original(source=source)
    dist = run_distributed(source=source, num_nodes=nodes, **kw)
    assert dist.result == base.result, (
        f"distributed={dist.result} original={base.result}"
    )
    return base, dist


# ---------------------------------------------------------------------------
# Single node first (rewritten code, no remote traffic)
# ---------------------------------------------------------------------------
def test_sequential_program_single_node():
    src = """
    class Main {
        static int main() {
            int acc = 0;
            for (int i = 0; i < 100; i++) { acc += i * i; }
            return acc;
        }
    }
    """
    both(src, nodes=1)


def test_objects_and_arrays_single_node():
    src = """
    class Box { int v; Box(int v) { this.v = v; } }
    class Main {
        static int main() {
            Box[] boxes = new Box[10];
            for (int i = 0; i < 10; i++) { boxes[i] = new Box(i); }
            int s = 0;
            for (int i = 0; i < 10; i++) { s += boxes[i].v; }
            return s;
        }
    }
    """
    both(src, nodes=1)


def test_statics_single_node():
    src = """
    class Cfg { static int scale = 3; }
    class Main {
        static int main() {
            Cfg.scale = Cfg.scale + 1;
            return Cfg.scale * 10;
        }
    }
    """
    both(src, nodes=1)


def test_console_output_single_node():
    src = """
    class Main {
        static int main() {
            Sys.print("hello " + 1);
            Sys.print("world " + 2.5);
            return 0;
        }
    }
    """
    base, dist = both(src, nodes=1)
    assert dist.console == base.console == ["hello 1", "world 2.5"]


# ---------------------------------------------------------------------------
# Multi-node: threads actually ship across the simulated cluster
# ---------------------------------------------------------------------------
SUMMER = """
class Work {
    int[] data;
    int lo;
    int hi;
    int result;
    Work(int[] d, int lo, int hi) { data = d; this.lo = lo; this.hi = hi; }
}
class Summer extends Thread {
    Work w;
    Summer(Work w) { this.w = w; }
    void run() {
        int s = 0;
        for (int i = w.lo; i < w.hi; i++) { s += w.data[i]; }
        w.result = s;
    }
}
class Main {
    static int main() {
        int n = 400;
        int[] data = new int[n];
        for (int i = 0; i < n; i++) { data[i] = i; }
        int k = 4;
        Summer[] ts = new Summer[k];
        for (int i = 0; i < k; i++) {
            ts[i] = new Summer(new Work(data, i * n / k, (i + 1) * n / k));
            ts[i].start();
        }
        int total = 0;
        for (int i = 0; i < k; i++) {
            ts[i].join();
            total += ts[i].w.result;
        }
        return total;
    }
}
"""


def test_fork_join_sum_across_nodes():
    base, dist = both(SUMMER, nodes=4)
    assert dist.result == sum(range(400))
    # Threads really spread out: the least-loaded scheduler should use
    # more than one node for 4 workers.
    assert len(dist.placements) > 1


def test_fork_join_sum_single_vs_many_nodes_same_result():
    for nodes in (1, 2, 3, 8):
        dist = run_distributed(source=SUMMER, num_nodes=nodes)
        assert dist.result == sum(range(400)), f"nodes={nodes}"


def test_remote_threads_fetch_objects_lazily():
    dist = run_distributed(source=SUMMER, num_nodes=4)
    total = dist.total_dsm()
    assert total.fetches > 0
    assert total.promotions > 0
    assert dist.net.messages > 0


SHARED_COUNTER = """
class Counter { int v; }
class Incr extends Thread {
    Counter c;
    int n;
    Incr(Counter c, int n) { this.c = c; this.n = n; }
    void run() {
        for (int i = 0; i < n; i++) {
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        Counter c = new Counter();
        int k = 4;
        Incr[] ts = new Incr[k];
        for (int i = 0; i < k; i++) { ts[i] = new Incr(c, 50); ts[i].start(); }
        for (int i = 0; i < k; i++) { ts[i].join(); }
        return c.v;
    }
}
"""


def test_distributed_mutual_exclusion():
    """The canonical DSM test: a contended counter must not lose updates."""
    base, dist = both(SHARED_COUNTER, nodes=4)
    assert dist.result == 200


def test_distributed_mutual_exclusion_many_configs():
    for nodes in (2, 3, 5):
        dist = run_distributed(source=SHARED_COUNTER, num_nodes=nodes)
        assert dist.result == 200, f"nodes={nodes}"


def test_lock_tokens_migrate():
    dist = run_distributed(source=SHARED_COUNTER, num_nodes=4)
    total = dist.total_dsm()
    assert total.token_transfers > 0
    assert total.diffs_sent > 0
    assert total.invalidations > 0


WAIT_NOTIFY = """
class Mailbox {
    int value;
    int ready;
}
class Producer extends Thread {
    Mailbox m;
    Producer(Mailbox m) { this.m = m; }
    void run() {
        synchronized (m) {
            m.value = 99;
            m.ready = 1;
            m.notifyAll();
        }
    }
}
class Main {
    static int main() {
        Mailbox m = new Mailbox();
        new Producer(m).start();
        synchronized (m) {
            while (m.ready == 0) { m.wait(); }
        }
        return m.value;
    }
}
"""


def test_wait_notify_across_nodes():
    base, dist = both(WAIT_NOTIFY, nodes=2)
    assert dist.result == 99


def test_statics_shared_across_nodes():
    src = """
    class Global { static int hits; }
    class Bumper extends Thread {
        void run() {
            synchronized (this) { }
            Global.hits += 0;   // touch the holder remotely
            int x = Global.hits;
        }
    }
    class Main {
        static int main() {
            Global.hits = 7;
            Bumper b = new Bumper();
            b.start();
            b.join();
            return Global.hits;
        }
    }
    """
    base, dist = both(src, nodes=2)
    assert dist.result == 7


def test_double_start_detected_distributed():
    src = """
    class T extends Thread { void run() { } }
    class Main {
        static int main() {
            T t = new T();
            t.start();
            t.start();
            return 0;
        }
    }
    """
    from repro.jvm import JavaRuntimeError
    with pytest.raises(JavaRuntimeError, match="already started"):
        run_distributed(source=src, num_nodes=2)


def test_mixed_brand_cluster():
    """The paper runs Sun and IBM JVMs in the same execution (§6)."""
    cfg = RuntimeConfig(num_nodes=4, brands=["sun", "ibm", "sun", "ibm"])
    dist = run_distributed(source=SHARED_COUNTER, config=cfg)
    assert dist.result == 200


COMPUTE_BOUND = """
class Work {
    int lo;
    int hi;
    double result;
    Work(int lo, int hi) { this.lo = lo; this.hi = hi; }
}
class Cruncher extends Thread {
    Work w;
    Cruncher(Work w) { this.w = w; }
    void run() {
        double s = 0.0;
        for (int i = w.lo; i < w.hi; i++) {
            double x = (double) i;
            for (int j = 0; j < 50; j++) { x = Math.sqrt(x + 2.0) * 1.5; }
            s += x;
        }
        w.result = s;
    }
}
class Main {
    static int main() {
        int n = 8000;
        int k = 8;
        Cruncher[] ts = new Cruncher[k];
        for (int i = 0; i < k; i++) {
            ts[i] = new Cruncher(new Work(i * n / k, (i + 1) * n / k));
            ts[i].start();
        }
        double total = 0.0;
        for (int i = 0; i < k; i++) { ts[i].join(); total += ts[i].w.result; }
        return (int) total;
    }
}
"""


def test_speedup_on_compute_bound_workload():
    """More nodes should cut simulated time for a compute-bound workload
    (shape of the paper's Table 4: work per byte shipped is high)."""
    t1 = run_distributed(source=COMPUTE_BOUND, num_nodes=1).simulated_ns
    t4 = run_distributed(source=COMPUTE_BOUND, num_nodes=4).simulated_ns
    # This workload is small (~27 ms simulated), so fetch/join round
    # trips still eat into the ideal 4x; the full-size benchmark apps
    # in benchmarks/ show the near-linear shape of Table 4.
    assert t4 < t1 * 0.8


def test_deadlock_detected():
    src = """
    class Main {
        static int main() {
            Object o = new Object();
            synchronized (o) { o.wait(); }   // nobody will notify
            return 0;
        }
    }
    """
    with pytest.raises(DeadlockError):
        run_distributed(source=src, num_nodes=1)
