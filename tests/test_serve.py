"""Serving subsystem: load generation, the Serve feed, churn scenarios.

The expensive end-to-end scenario runs live here at small scale; the CI
serve-smoke job sweeps more seeds and the proc backend.
"""

import json

import pytest

from repro.lang import compile_source
from repro.serve import (PRESETS, LoadGenerator, PhaseSpec, run_scenario,
                         run_scenario_sweep, validate_serve_doc)
from repro.serve.app import make_source
from repro.serve.loadgen import KEY_SPACE
from repro.serve.manager import LoadFeed
from repro.serve.scenario import Scenario, run_serve_reference
from repro.sim import NS_PER_MS


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------

def _gen(seed=0):
    return LoadGenerator(
        (PhaseSpec(duration_ms=2, rate_per_ms=5),
         PhaseSpec(duration_ms=2, rate_per_ms=10,
                   hot_lo=0, hot_hi=4, hot_frac=1.0)),
        sessions=16, seed=seed)


def test_loadgen_is_deterministic_per_seed_and_tenant():
    assert _gen(0).schedule(0) == _gen(0).schedule(0)
    assert _gen(0).schedule(0) != _gen(0).schedule(1)
    assert _gen(0).schedule(0) != _gen(1).schedule(0)


def test_loadgen_respects_phase_bounds_and_hot_set():
    gen = _gen()
    bounds = gen.phase_bounds()
    assert bounds == [(0, 2 * NS_PER_MS), (2 * NS_PER_MS, 4 * NS_PER_MS)]
    sched = gen.schedule(0)
    assert sched == sorted(sched)
    for t, key, phase in sched:
        lo, hi = bounds[phase]
        assert lo <= t < hi
        assert 0 <= key < 16
        if phase == 1:           # hot_frac=1.0: every key from the hot set
            assert key < 4


def test_loadgen_uniform_distribution_is_evenly_spaced():
    gen = LoadGenerator(
        (PhaseSpec(duration_ms=1, rate_per_ms=4, dist="uniform"),),
        sessions=8, seed=0)
    times = [t for t, _, _ in gen.schedule(0)]
    gaps = {b - a for a, b in zip(times, times[1:])}
    assert len(gaps) == 1


def test_loadgen_rejects_bad_specs():
    with pytest.raises(ValueError):
        LoadGenerator((), sessions=8)
    with pytest.raises(ValueError):
        LoadGenerator((PhaseSpec(duration_ms=1, rate_per_ms=1),),
                      sessions=KEY_SPACE + 1)
    with pytest.raises(ValueError):
        LoadGenerator((PhaseSpec(duration_ms=1, rate_per_ms=1,
                                 hot_lo=4, hot_hi=2, hot_frac=0.5),),
                      sessions=8)


# ---------------------------------------------------------------------------
# LoadFeed (unit level, no cluster)
# ---------------------------------------------------------------------------

class _FakeEngine:
    def __init__(self):
        self.now = 0
        self.timers = []

    def schedule_at(self, at_ns, callback):
        self.timers.append((at_ns, callback))

    def fire_due(self, now):
        self.now = now
        due = [cb for t, cb in self.timers if t <= now]
        self.timers = [(t, cb) for t, cb in self.timers if t > now]
        for cb in due:
            cb()


class _FakeThread:
    def __init__(self):
        from repro.sim.node import StreamState
        self.state = StreamState.BLOCKED
        self.completions = []

    def complete(self, value):
        self.completions.append(value)


def test_feed_delivers_due_requests_and_encodes_seq_key():
    engine = _FakeEngine()
    feed = LoadFeed(engine, [[(100, 7, 0), (200, 3, 0)]])
    engine.now = 150
    value = feed.next(_FakeThread(), 0)
    assert value == 1 * KEY_SPACE + 7       # seq 0, key 7
    assert feed.delivered == 1


def test_feed_blocks_until_timer_then_completes_waiter():
    from repro.jvm.interpreter import BLOCK

    engine = _FakeEngine()
    feed = LoadFeed(engine, [[(100, 5, 0)]])
    waiter = _FakeThread()
    assert feed.next(waiter, 0) is BLOCK
    assert engine.timers and engine.timers[0][0] == 100
    engine.fire_due(100)
    assert waiter.completions == [1 * KEY_SPACE + 5]


def test_feed_returns_minus_one_when_exhausted():
    engine = _FakeEngine()
    feed = LoadFeed(engine, [[(100, 5, 0)]])
    engine.now = 100
    feed.next(_FakeThread(), 0)
    assert feed.next(_FakeThread(), 0) == -1


def test_feed_skips_dead_waiters_without_consuming_arrivals():
    engine = _FakeEngine()
    feed = LoadFeed(engine, [[(100, 5, 0)]],
                    thread_ok=lambda t: not getattr(t, "dead", False))
    dead, live = _FakeThread(), _FakeThread()
    dead.dead = True
    assert feed.next(dead, 0) is not None   # parks (returns BLOCK)
    engine.fire_due(100)
    assert dead.completions == []
    assert feed.delivered == 0              # arrival NOT consumed
    engine.now = 100
    assert feed.next(live, 0) == 1 * KEY_SPACE + 5


def test_feed_done_records_latency_once_per_seq():
    done = []
    engine = _FakeEngine()

    class _T(_FakeThread):
        class jvm:
            class node:
                node_id = 2

    feed = LoadFeed(engine, [[(100, 5, 0)]],
                    on_done=lambda *a: done.append(a))
    engine.now = 150
    feed.next(_T(), 0)
    engine.now = 400
    feed.done(_T(), 0, 0)
    feed.done(_T(), 0, 0)                   # replay after a kill-restart
    assert done == [(0, 0, 0, 300, 2)]      # latency 400-100, node 2
    assert feed.completed == 1
    assert feed.duplicate_done == 1


# ---------------------------------------------------------------------------
# End-to-end scenarios (sim backend; proc is covered by CI serve-smoke)
# ---------------------------------------------------------------------------

SMALL = Scenario(
    name="small",
    description="test-scale steady scenario",
    nodes=2, brands=("sun",),
    tenants=1, workers=2, sessions=16, stripes=2, work_scale=4,
    phases=(PhaseSpec(duration_ms=2, rate_per_ms=4),),
)


def test_small_scenario_oracle_clean_and_matches_reference():
    doc = run_scenario(SMALL, seed=0, backend="sim")
    assert doc["ok"], doc
    assert doc["result"]["matches"]
    assert doc["oracle"]["violations"] == []
    assert doc["requests"]["completed"] == doc["requests"]["injected"]
    assert validate_serve_doc(doc) == []


def test_small_scenario_slo_sections_are_consistent():
    doc = run_scenario(SMALL, seed=1, backend="sim")
    slo = doc["slo"]
    assert len(slo["phases"]) == 1
    phase, overall = slo["phases"][0], slo["overall"]
    assert phase["completed"] == overall["completed"] \
        == doc["requests"]["completed"]
    lat = overall["latency_ms"]
    assert lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]
    assert overall["throughput_rps"] > 0


def test_reference_runner_consumes_full_schedule():
    gen = LoadGenerator((PhaseSpec(duration_ms=2, rate_per_ms=4),),
                        sessions=16, seed=0)
    schedules = gen.schedules(1)
    classfiles = compile_source(make_source(
        tenants=1, workers=2, sessions=16, stripes=2, work_scale=4))
    thread = run_serve_reference(classfiles, schedules)
    assert thread.result is not None and thread.result > 0


def test_churn_preset_oracle_clean_on_sim():
    """The acceptance scenario: mixed brands, mid-run join, random kill,
    two tenants — must complete oracle-clean (exact result optional
    under the kill, same contract as tsp)."""
    doc = run_scenario(PRESETS["churn"], seed=0, backend="sim")
    assert doc["ok"], doc
    assert doc["cluster"]["brands"] == ["sun", "ibm", "sun"]
    assert doc["cluster"]["joins"] == [{"at_ms": 6.0, "brand": "ibm"}]
    assert doc["faults"]["killed"], "the kill never happened"
    assert validate_serve_doc(doc) == []


def test_scenario_sweep_document_shape():
    doc = run_scenario_sweep(SMALL, seeds=2, backend="sim")
    assert doc["ok"] and doc["failed_seeds"] == []
    assert [r["seed"] for r in doc["seeds"]] == [0, 1]
    assert validate_serve_doc(doc) == []
    # Sweeps are JSON-serializable end to end (CI writes them to disk).
    json.dumps(doc)


def test_validate_serve_doc_catches_damage():
    doc = run_scenario(SMALL, seed=0, backend="sim")
    assert validate_serve_doc(doc) == []
    del doc["slo"]["overall"]["latency_ms"]
    assert validate_serve_doc(doc)
    assert validate_serve_doc([]) == ["document is not an object"]
