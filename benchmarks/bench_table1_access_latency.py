"""Table 1 — Heap data access latency (§6.1).

Regenerates the paper's Table 1: per-access latency of field / static /
array reads and writes, original vs rewritten bytecode, on both JVM
brands.  Paper shape: Sun slowdowns land in 2.2-5.6x, IBM in 12-55x,
with array reads the worst case on IBM.
"""

import pytest

from repro.bench import emit, format_table1, measure_access_latency

# Paper Table 1 slowdown targets, with tolerance bands (our measurement
# subtracts a baseline loop, so a few percent of skew is expected).
PAPER_SLOWDOWN_BANDS = {
    "sun": {
        "field read": (1.9, 2.5),    # paper: 2.17
        "field write": (2.2, 2.9),   # paper: 2.56
        "static read": (1.9, 2.6),   # paper: 2.2
        "static write": (2.6, 3.6),  # paper: 3.1
        "array read": (4.8, 6.3),    # paper: 5.57
        "array write": (3.5, 4.7),   # paper: 4.1
    },
    "ibm": {
        "field read": (20.0, 29.0),   # paper: 24.9
        "field write": (10.0, 15.0),  # paper: 12.2
        "static read": (22.0, 32.0),  # paper: 26.9
        "static write": (9.0, 15.0),  # paper: 11.9
        "array read": (45.0, 62.0),   # paper: 55.1
        "array write": (20.0, 31.0),  # paper: 25.7
    },
}


@pytest.fixture(scope="module")
def table1_rows():
    return {
        brand: measure_access_latency(brand)
        for brand in ("sun", "ibm")
    }


def test_table1_regenerate(table1_rows, benchmark):
    benchmark.pedantic(
        lambda: measure_access_latency("sun", kinds=["field read"], iters=2_000),
        rounds=1, iterations=1,
    )
    emit("table1_access_latency", format_table1(table1_rows))


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_table1_slowdowns_in_paper_bands(table1_rows, brand):
    for row in table1_rows[brand]:
        lo, hi = PAPER_SLOWDOWN_BANDS[brand][row.kind]
        assert lo <= row.slowdown <= hi, (
            f"{brand} {row.kind}: slowdown {row.slowdown:.2f} outside "
            f"paper band [{lo}, {hi}]"
        )


def test_table1_ibm_baseline_accesses_much_cheaper(table1_rows):
    """IBM's optimized heap accesses are ~an order of magnitude cheaper
    than Sun's — the mechanism behind the asymmetric slowdowns."""
    for sun_row, ibm_row in zip(table1_rows["sun"], table1_rows["ibm"]):
        assert ibm_row.original_ns * 4 < sun_row.original_ns


def test_table1_rewritten_latencies_comparable_across_brands(table1_rows):
    """The check cost itself is brand-insensitive: rewritten latencies
    land within a small factor of each other."""
    for sun_row, ibm_row in zip(table1_rows["sun"], table1_rows["ibm"]):
        ratio = sun_row.rewritten_ns / ibm_row.rewritten_ns
        assert 0.3 < ratio < 8.0


def test_table1_array_read_worst_on_ibm(table1_rows):
    rows = {r.kind: r for r in table1_rows["ibm"]}
    worst = max(rows.values(), key=lambda r: r.slowdown)
    assert worst.kind == "array read"
