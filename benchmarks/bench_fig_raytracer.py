"""Table 4 figure — 3D Ray Tracer execution time and speedup, 1-16
nodes × 2 threads, both JVM brands (§6.2).

Paper shape: near-proportional speedup with row distribution; Ray
Tracer is the static-variable-heavy workload.  Known deviation: the
paper observes the *Sun* speedup lower for Ray Tracer (its original ran
faster on Sun), caused by JIT data-access optimizations our flat cost
model does not have; see EXPERIMENTS.md.
"""

import pytest

from repro.apps import raytracer
from repro.bench import emit, figure_sweep, format_figure

PARAMS = dict(resolution=32, n_spheres=48)
DILATION = 600


def _sweep(brand):
    return figure_sweep(
        "raytracer",
        lambda k: raytracer.make_source(n_threads=k, **PARAMS),
        brand=brand,
        time_dilation=DILATION,
    )


@pytest.fixture(scope="module")
def ray_results():
    return {brand: _sweep(brand) for brand in ("sun", "ibm")}


def test_fig_raytracer_regenerate(ray_results, benchmark):
    benchmark.pedantic(
        lambda: figure_sweep(
            "ray-smoke",
            lambda k: raytracer.make_source(
                resolution=8, n_spheres=8, n_threads=k
            ),
            brand="sun", node_counts=(1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit("fig_raytracer", format_figure(list(ray_results.values())))
    for res in ray_results.values():
        assert res.speedup_at(16) > 2.5


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_fig_raytracer_speedup_scales(ray_results, brand):
    """Near-constant efficiency per added node (§6.2); single-node
    slowdown in the paper's application bands."""
    res = ray_results[brand]
    speedups = [p.speedup for p in res.points]
    assert speedups == sorted(speedups)
    for prev, nxt in zip(res.points, res.points[1:]):
        assert nxt.speedup / prev.speedup > 1.4
    slowdown = res.points[0].time_s / res.baseline_time_s
    assert 1.5 <= slowdown <= 6.0
    assert res.speedup_at(16) > 2.5


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_fig_raytracer_times_decrease(ray_results, brand):
    times = [p.time_s for p in ray_results[brand].points]
    assert times == sorted(times, reverse=True)


def test_fig_raytracer_checksum_constant(ray_results):
    """Same scene, same checksum on both brands (FP is deterministic)."""
    sun = ray_results["sun"]
    ibm = ray_results["ibm"]
    assert sun.baseline_result == ibm.baseline_result
