"""Ablation A3 (§4.4) — the local-object lock counter.

JavaSplit avoids the full synchronization handler for objects that never
escaped their creating thread: acquires become counter bumps, cheaper
even than the original Java monitorenter.  This ablation runs an
unneeded-synchronization-heavy workload (the paper cites [4]: most Java
synchronization guards thread-local data) with the optimization on and
off.

Expected shape: a large time reduction with the counter on; identical
results either way.
"""

import pytest

from repro.dsm import DsmConfig
from repro.bench import emit
from repro.runtime import RuntimeConfig, run_distributed

# Heavy use of a synchronized method on thread-local objects — the
# "great amount of unneeded synchronization" pattern of §4.4.
WORKLOAD = """
class Buffer {
    int size;
    synchronized void add() { size += 1; }
    synchronized int flush() { int s = size; size = 0; return s; }
}
class Filler extends Thread {
    int total;
    void run() {
        Buffer local = new Buffer();   // never escapes this thread
        int acc = 0;
        for (int i = 0; i < 300; i++) {
            local.add();
            if (i % 10 == 9) { acc += local.flush(); }
        }
        total = acc;
    }
}
class Main {
    static int main() {
        int k = 4;
        Filler[] ts = new Filler[k];
        for (int i = 0; i < k; i++) { ts[i] = new Filler(); ts[i].start(); }
        int total = 0;
        for (int i = 0; i < k; i++) { ts[i].join(); total += ts[i].total; }
        return total;
    }
}
"""

EXPECTED = 4 * 300


def _run(local_lock_opt: bool):
    cfg = RuntimeConfig(
        num_nodes=2,
        dsm=DsmConfig(local_lock_opt=local_lock_opt),
    )
    return run_distributed(source=WORKLOAD, config=cfg)


@pytest.fixture(scope="module")
def locallock_results():
    return {"counter on": _run(True), "counter off": _run(False)}


def test_ablation_locallock_regenerate(locallock_results, benchmark):
    benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
    lines = [f"{'variant':<14}{'time (ms)':>12}{'local acq':>11}"
             f"{'shared acq':>12}{'result':>9}"]
    for name, rep in locallock_results.items():
        d = rep.total_dsm()
        lines.append(
            f"{name:<14}{rep.simulated_ns / 1e6:>12.3f}"
            f"{d.local_acquires:>11}{d.shared_acquires:>12}{rep.result:>9}"
        )
    emit("ablation_locallock", "\n".join(lines))
    on = locallock_results["counter on"]
    off = locallock_results["counter off"]
    assert on.simulated_ns < off.simulated_ns


def test_results_identical(locallock_results):
    for rep in locallock_results.values():
        assert rep.result == EXPECTED


def test_counter_used_only_when_enabled(locallock_results):
    on = locallock_results["counter on"].total_dsm()
    off = locallock_results["counter off"].total_dsm()
    assert on.local_acquires > 1000
    assert off.local_acquires == 0
    assert off.shared_acquires > on.shared_acquires


def test_counter_saves_time(locallock_results):
    on = locallock_results["counter on"].simulated_ns
    off = locallock_results["counter off"].simulated_ns
    assert on < off * 0.9
