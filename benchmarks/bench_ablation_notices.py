"""Ablation A2 (§3.1) — bounded vs unbounded write-notice storage.

HLRC keeps every write notice it has ever seen (collectable only by a
global GC); MTS-HLRC keeps just the latest notice per coherency unit.
This ablation runs a long sharing workload and compares per-node notice
storage: the HLRC log grows with the number of *writes*, the MTS-HLRC
table stays bounded by the number of *live shared objects* — the
memory-overflow argument of §3.1, made countable.
"""

import pytest

from repro.dsm import MODE_BOUNDED, MODE_FULL, DsmConfig
from repro.bench import emit
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig

WORKLOAD = """
class Cell { int v; }
class Writer extends Thread {
    Cell c;
    int rounds;
    Writer(Cell c, int rounds) { this.c = c; this.rounds = rounds; }
    void run() {
        for (int i = 0; i < rounds; i++) {
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        Cell c = new Cell();
        Writer a = new Writer(c, 60);
        Writer b = new Writer(c, 60);
        a.start(); b.start();
        a.join(); b.join();
        return c.v;
    }
}
"""


def _run(mode):
    cfg = RuntimeConfig(num_nodes=3, dsm=DsmConfig(notice_mode=mode))
    rt = JavaSplitRuntime(
        rewrite_application(compile_source(WORKLOAD)), cfg
    )
    report = rt.run()
    stored = max(w.dsm.notice_table.stored_notices for w in rt.workers)
    storage = max(w.dsm.notice_table.storage_bytes() for w in rt.workers)
    shared_objects = max(len(w.dsm.cache) for w in rt.workers)
    return report, stored, storage, shared_objects


@pytest.fixture(scope="module")
def notice_results():
    return {mode: _run(mode) for mode in (MODE_BOUNDED, MODE_FULL)}


def test_ablation_notices_regenerate(notice_results, benchmark):
    benchmark.pedantic(lambda: _run(MODE_BOUNDED), rounds=1, iterations=1)
    lines = [f"{'mode':<12}{'max notices':>13}{'bytes':>9}"
             f"{'shared objs':>13}{'result':>9}"]
    for mode, (rep, stored, storage, objs) in notice_results.items():
        lines.append(
            f"{mode:<12}{stored:>13}{storage:>9}{objs:>13}{rep.result:>9}"
        )
    emit("ablation_notices", "\n".join(lines))


def test_results_identical(notice_results):
    results = {rep.result for rep, *_ in notice_results.values()}
    assert results == {120}


def test_full_mode_storage_grows_with_writes(notice_results):
    _, bounded_stored, bounded_bytes, _ = notice_results[MODE_BOUNDED]
    _, full_stored, full_bytes, _ = notice_results[MODE_FULL]
    assert full_stored > 3 * bounded_stored
    assert full_bytes > 3 * bounded_bytes


def test_bounded_mode_capped_by_live_objects(notice_results):
    _, stored, _, shared_objects = notice_results[MODE_BOUNDED]
    assert stored <= shared_objects
