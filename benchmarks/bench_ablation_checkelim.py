"""Ablation A4 (§6.2) — redundant access-check elimination.

"To reduce the overhead of the heap data accesses, we are currently
working on methods to eliminate unnecessary access checks ... Since we
are planning to employ aggressive access check elimination techniques
such as those used in [19], we expect that in the future we will get
similar speedups for different JVMs."

This ablation measures each benchmark app's single-node instrumentation
slowdown with the pass off (the paper's prototype) and on, for both
JVM brands.  Expected shape: slowdowns drop on both brands, and the
*gap between brands* narrows — the paper's stated motivation.
"""

import pytest

from repro.apps import raytracer, series, tsp
from repro.bench import emit
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig, run_original

APPS = {
    "tsp": tsp.make_source(n_cities=7, n_threads=2),
    "series": series.make_source(n_coeffs=16, steps=30, n_threads=2),
    "raytracer": raytracer.make_source(resolution=10, n_threads=2, n_spheres=16),
}


def _slowdown(src, brand, optimize):
    base = run_original(source=src, brand=brand)
    rw = rewrite_application(compile_source(src), optimize_checks=optimize)
    rep = JavaSplitRuntime(
        rw, RuntimeConfig(num_nodes=1, brands=(brand,))
    ).run()
    assert rep.result == base.result
    return rep.simulated_ns / base.simulated_ns, rw.stats["checks_eliminated"]


@pytest.fixture(scope="module")
def checkelim_results():
    out = {}
    for app, src in APPS.items():
        for brand in ("sun", "ibm"):
            off, _ = _slowdown(src, brand, optimize=False)
            on, eliminated = _slowdown(src, brand, optimize=True)
            out[(app, brand)] = (off, on, eliminated)
    return out


def test_ablation_checkelim_regenerate(checkelim_results, benchmark):
    benchmark.pedantic(
        lambda: _slowdown(APPS["series"], "sun", True),
        rounds=1, iterations=1,
    )
    lines = [f"{'app':<12}{'brand':<7}{'slowdown off':>14}{'slowdown on':>13}"
             f"{'checks gone':>13}"]
    for (app, brand), (off, on, gone) in checkelim_results.items():
        lines.append(f"{app:<12}{brand:<7}{off:>14.2f}{on:>13.2f}{gone:>13}")
    emit("ablation_checkelim", "\n".join(lines))
    for (app, brand), (off, on, _) in checkelim_results.items():
        assert on <= off, (app, brand)


@pytest.mark.parametrize("app", list(APPS))
def test_checkelim_reduces_slowdown(checkelim_results, app):
    for brand in ("sun", "ibm"):
        off, on, gone = checkelim_results[(app, brand)]
        assert gone > 0
        assert on < off


def test_checkelim_narrows_brand_gap(checkelim_results):
    """The paper's motivation: with check elimination the two brands'
    slowdowns converge (on array-heavy TSP, where the gap is widest)."""
    sun_off, sun_on, _ = checkelim_results[("tsp", "sun")]
    ibm_off, ibm_on, _ = checkelim_results[("tsp", "ibm")]
    gap_off = abs(sun_off - ibm_off)
    gap_on = abs(sun_on - ibm_on)
    assert gap_on <= gap_off
