"""Table 4 figure — Series (Fourier coefficients) execution time and
speedup, 1-16 nodes × 2 threads, both JVM brands (§6.2).

Paper shape: speedup close to proportional to node count; efficiency
below 100% due to the instrumentation slowdown; the IBM brand's speedup
is markedly *lower* than Sun's because the original Series runs much
faster on the IBM JVM (the speedup denominator shrinks, the distributed
times stay similar).
"""

import pytest

from repro.apps import series
from repro.bench import emit, figure_sweep, format_figure

PARAMS = dict(n_coeffs=128, steps=120)
DILATION = 1200


def _sweep(brand):
    return figure_sweep(
        "series",
        lambda k: series.make_source(n_threads=k, **PARAMS),
        brand=brand,
        time_dilation=DILATION,
    )


@pytest.fixture(scope="module")
def series_results():
    return {brand: _sweep(brand) for brand in ("sun", "ibm")}


def test_fig_series_regenerate(series_results, benchmark):
    benchmark.pedantic(
        lambda: figure_sweep(
            "series-smoke",
            lambda k: series.make_source(n_coeffs=8, steps=10, n_threads=k),
            brand="sun", node_counts=(1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit("fig_series", format_figure(list(series_results.values())))
    for res in series_results.values():
        speedups = [p.speedup for p in res.points]
        assert speedups == sorted(speedups), "speedup must grow with nodes"
        assert res.speedup_at(16) > 5.0


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_fig_series_speedup_scales(series_results, brand):
    res = series_results[brand]
    assert res.speedup_at(2) > 1.3
    assert res.speedup_at(4) > 2.3
    assert res.speedup_at(8) > 4.0
    assert res.speedup_at(16) > 5.0


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_fig_series_times_decrease(series_results, brand):
    times = [p.time_s for p in series_results[brand].points]
    assert times == sorted(times, reverse=True)


def test_fig_series_ibm_speedup_lower_than_sun(series_results):
    """§6.2: 'In Series, the speedup obtained by the IBM's JVM is
    significantly lower than the one obtained by the Sun's JVM ...
    due to the much lower execution time of Series on a single IBM
    JVM.'"""
    sun = series_results["sun"]
    ibm = series_results["ibm"]
    assert ibm.baseline_time_s < sun.baseline_time_s
    assert ibm.speedup_at(16) < sun.speedup_at(16)


def test_fig_series_single_node_slowdown_is_instrumentation(series_results):
    """At 1 node the only difference from the baseline is rewriting:
    the paper quotes app-level slowdown factors of 1.5-6."""
    for res in series_results.values():
        slowdown = res.points[0].time_s / res.baseline_time_s
        assert 1.05 < slowdown < 6.0
