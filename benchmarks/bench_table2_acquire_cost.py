"""Table 2 — Local acquire cost (§6.1, §4.4).

Paper shape, per brand: acquiring a *local* object (the §4.4 lock
counter) is cheaper than the original Java acquire; acquiring a *shared*
object (DSM handler, token locally cached) is ~3-3.5x the original.
"""

import pytest

from repro.bench import emit, format_table2, measure_acquire_cost


@pytest.fixture(scope="module")
def table2_rows():
    return {brand: measure_acquire_cost(brand) for brand in ("sun", "ibm")}


def _by_variant(rows):
    return {r.variant: r.per_op_ns for r in rows}


def test_table2_regenerate(table2_rows, benchmark):
    benchmark.pedantic(
        lambda: measure_acquire_cost("sun", iters=500),
        rounds=1, iterations=1,
    )
    emit("table2_acquire_cost", format_table2(table2_rows))
    for brand in ("sun", "ibm"):
        v = _by_variant(table2_rows[brand])
        assert v["local object"] < v["original"] < v["shared object"]


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_table2_ordering(table2_rows, brand):
    """local < original < shared — the §4.4 headline."""
    v = _by_variant(table2_rows[brand])
    assert v["local object"] < v["original"] < v["shared object"]


@pytest.mark.parametrize("brand,lo,hi", [
    # paper: local/original = 0.22 (sun), 0.59 (ibm)
    ("sun", 0.15, 0.45),
    ("ibm", 0.45, 0.85),
])
def test_table2_local_ratio(table2_rows, brand, lo, hi):
    v = _by_variant(table2_rows[brand])
    assert lo <= v["local object"] / v["original"] <= hi


@pytest.mark.parametrize("brand,lo,hi", [
    # paper: shared/original = 3.1 (sun), 3.5 (ibm)
    ("sun", 2.4, 4.0),
    ("ibm", 2.6, 4.4),
])
def test_table2_shared_ratio(table2_rows, brand, lo, hi):
    v = _by_variant(table2_rows[brand])
    assert lo <= v["shared object"] / v["original"] <= hi
