"""Table 3 — Communication latency vs message size (§6.1).

Paper shape: latency is dominated by the fixed per-message cost at small
sizes and by the 100 Mbit wire at 65000 B (~6 ms one-way); the IBM
communication stack has a much smaller fixed cost than Sun's.
"""

import pytest

from repro.bench import MESSAGE_SIZES, emit, format_table3, measure_comm_latency

# Paper Table 3 (ms), with generous bands for the linear latency model.
PAPER_BANDS = {
    "sun": {65: (0.4, 0.9), 650: (0.4, 1.0), 6500: (0.8, 1.6),
            65000: (5.0, 7.5)},
    "ibm": {65: (0.05, 0.2), 650: (0.1, 0.3), 6500: (0.5, 1.1),
            65000: (5.0, 7.5)},
}


@pytest.fixture(scope="module")
def table3_rows():
    return {brand: measure_comm_latency(brand) for brand in ("sun", "ibm")}


def test_table3_regenerate(table3_rows, benchmark):
    benchmark.pedantic(
        lambda: measure_comm_latency("sun"),
        rounds=1, iterations=1,
    )
    emit("table3_comm_latency", format_table3(table3_rows))
    for brand, rows in table3_rows.items():
        for size, ms in rows:
            lo, hi = PAPER_BANDS[brand][size]
            assert lo <= ms <= hi, f"{brand}/{size}B: {ms}ms not in [{lo},{hi}]"


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_table3_monotonic_in_size(table3_rows, brand):
    latencies = [ms for _, ms in table3_rows[brand]]
    assert latencies == sorted(latencies)


def test_table3_ibm_fixed_cost_much_smaller(table3_rows):
    """At 65 B the Sun stack is several times slower (0.64 vs 0.09 ms in
    the paper); at 65000 B the wire dominates and they converge."""
    sun = dict(table3_rows["sun"])
    ibm = dict(table3_rows["ibm"])
    assert sun[65] > 3 * ibm[65]
    assert abs(sun[65000] - ibm[65000]) / sun[65000] < 0.25


def test_table3_big_messages_near_six_ms(table3_rows):
    for brand in ("sun", "ibm"):
        ms = dict(table3_rows[brand])[65000]
        assert 5.0 < ms < 7.5
