"""Table 4 figure — TSP (branch-and-bound) execution time and speedup,
1-16 nodes × 2 threads, both JVM brands (§6.2).

Paper shape: near-proportional speedup; TSP is the array-access-heavy
workload, so its single-node instrumentation slowdown is the largest of
the three apps (array checks are the most expensive rows of Table 1).
"""

import pytest

from repro.apps import tsp
from repro.bench import emit, figure_sweep, format_figure

PARAMS = dict(n_cities=8)
DILATION = 1500


def _sweep(brand):
    return figure_sweep(
        "tsp",
        lambda k: tsp.make_source(n_threads=k, **PARAMS),
        brand=brand,
        time_dilation=DILATION,
    )


@pytest.fixture(scope="module")
def tsp_results():
    return {brand: _sweep(brand) for brand in ("sun", "ibm")}


def test_fig_tsp_regenerate(tsp_results, benchmark):
    benchmark.pedantic(
        lambda: figure_sweep(
            "tsp-smoke",
            lambda k: tsp.make_source(n_cities=6, n_threads=k),
            brand="sun", node_counts=(1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit("fig_tsp", format_figure(list(tsp_results.values())))
    for res in tsp_results.values():
        assert res.speedup_at(16) > 2.0


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_fig_tsp_speedup_scales(tsp_results, brand):
    """§6.2: "the efficiency of each added machine remains almost
    constant, although much below 100% due to the instrumentation
    slowdown" — each node-count doubling keeps paying off at a steady
    rate, and the single-node slowdown sits in the paper's app bands."""
    res = tsp_results[brand]
    speedups = [p.speedup for p in res.points]
    assert speedups == sorted(speedups)
    for prev, nxt in zip(res.points, res.points[1:]):
        assert nxt.speedup / prev.speedup > 1.4, (
            f"{brand}: doubling {prev.nodes}->{nxt.nodes} gained only "
            f"{nxt.speedup / prev.speedup:.2f}x"
        )
    slowdown = res.points[0].time_s / res.baseline_time_s
    assert 1.5 <= slowdown <= 6.0
    assert res.speedup_at(16) > 2.0


@pytest.mark.parametrize("brand", ["sun", "ibm"])
def test_fig_tsp_result_is_optimal_everywhere(tsp_results, brand):
    """All sweep points returned the same minimal tour (checked inside
    figure_sweep against the original run); spot-check its value against
    an independent Python branch-and-bound."""
    import itertools
    import math

    res = tsp_results[brand]
    n = PARAMS["n_cities"]
    s = tsp.DEFAULT_SEED
    xs, ys = [], []

    def lcg(v):
        v = (v * 1103515245 + 12345) % 2147483648
        return v if v >= 0 else -v

    for _ in range(n):
        s = lcg(s); xs.append(s % 1000)
        s = lcg(s); ys.append(s % 1000)
    dist = [[int(math.sqrt((xs[i] - xs[j]) ** 2 + (ys[i] - ys[j]) ** 2))
             for j in range(n)] for i in range(n)]
    best = min(
        sum(dist[t][u] for t, u in zip((0,) + p, p + (0,)))
        for p in itertools.permutations(range(1, n))
    )
    assert res.baseline_result == best


def test_fig_tsp_largest_instrumentation_slowdown_on_arrays(tsp_results):
    """TSP's single-node slowdown exceeds Series' (array checks are the
    costliest — §6.2 attributes per-app slowdown differences to the
    prevailing access type)."""
    for brand, res in tsp_results.items():
        slowdown = res.points[0].time_s / res.baseline_time_s
        assert slowdown > 1.3, f"{brand}: {slowdown}"
