"""Ablation A5 (§4.3 extension) — array-region coherency units.

"Although currently we treat each array as a single coherency unit, in
the future we plan to divide big arrays into several coherency units."
This ablation quantifies why: with block-partitioned readers over one
big shared array, the whole-array unit ships the full array to every
node, while region units ship only what each node touches.

Expected shape: fetched bytes fall as regions shrink — until per-message
overhead dominates and the curve turns back up (the classic granularity
tradeoff).
"""

import pytest

from repro.dsm import DsmConfig
from repro.bench import emit
from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig

WORKLOAD = """
class Work {
    double[] data;
    int lo;
    int hi;
    double result;
    Work(double[] d, int lo, int hi) { data = d; this.lo = lo; this.hi = hi; }
}
class Reader extends Thread {
    Work w;
    Reader(Work w) { this.w = w; }
    void run() {
        double s = 0.0;
        for (int i = w.lo; i < w.hi; i++) { s += w.data[i]; }
        w.result = s;
    }
}
class Main {
    static int main() {
        int n = 2048;
        double[] data = new double[n];
        for (int i = 0; i < n; i++) { data[i] = (double) i; }
        int k = 8;
        Reader[] ts = new Reader[k];
        for (int i = 0; i < k; i++) {
            ts[i] = new Reader(new Work(data, i * n / k, (i + 1) * n / k));
            ts[i].start();
        }
        double total = 0.0;
        for (int i = 0; i < k; i++) { ts[i].join(); total += ts[i].w.result; }
        return (int) total;
    }
}
"""

EXPECTED = sum(range(2048))
REGION_SIZES = (None, 1024, 256, 64, 16)


def _run(region_elems):
    cfg = RuntimeConfig(
        num_nodes=4,
        dsm=DsmConfig(array_region_elems=region_elems),
    )
    return JavaSplitRuntime(
        rewrite_application(compile_source(WORKLOAD)), cfg
    ).run()


@pytest.fixture(scope="module")
def region_results():
    return {size: _run(size) for size in REGION_SIZES}


def test_ablation_regions_regenerate(region_results, benchmark):
    benchmark.pedantic(lambda: _run(256), rounds=1, iterations=1)
    lines = [f"{'region elems':<14}{'time (ms)':>11}{'fetches':>9}"
             f"{'fetch KB':>10}{'net KB':>8}{'result':>9}"]
    for size, rep in region_results.items():
        d = rep.total_dsm()
        label = "whole array" if size is None else str(size)
        lines.append(
            f"{label:<14}{rep.simulated_ns / 1e6:>11.2f}{d.fetches:>9}"
            f"{d.fetch_bytes / 1024:>10.1f}{rep.net.bytes / 1024:>8.1f}"
            f"{rep.result:>9}"
        )
    emit("ablation_regions", "\n".join(lines))
    for rep in region_results.values():
        assert rep.result == EXPECTED


def test_all_region_sizes_correct(region_results):
    for size, rep in region_results.items():
        assert rep.result == EXPECTED, size


def test_regions_cut_fetch_traffic(region_results):
    """Block-partitioned readers: region units fetch far less than the
    whole-array unit."""
    whole = region_results[None].total_dsm().fetch_bytes
    regioned = region_results[256].total_dsm().fetch_bytes
    assert regioned < whole * 0.7


def test_granularity_tradeoff_visible(region_results):
    """Tiny regions pay per-message overhead: more fetches than coarse
    regions (the turn of the granularity curve)."""
    coarse = region_results[1024].total_dsm().fetches
    fine = region_results[16].total_dsm().fetches
    assert fine > coarse
