"""Ablation A1 (§3.1) — scalar vs vector timestamps.

MTS-HLRC replaces per-CU vector timestamps with scalars, shrinking
every write notice to a single integer at the cost of fencing remote
lock transfers on outstanding diff acks.  This ablation runs a
lock-transfer-heavy workload under both modes and reports time, notice
traffic and fence waits.

Expected shape: the scalar mode incurs fence waits (the §3.1 tradeoff)
but ships less notice data per transfer; both modes are correct.
"""

import pytest

from repro.dsm import HLRC_BASELINE, MTS_HLRC, DsmConfig
from repro.bench import emit
from repro.runtime import RuntimeConfig, run_distributed, run_original

WORKLOAD = """
class Cell { int v; }
class Bump extends Thread {
    Cell[] cells;
    int reps;
    Bump(Cell[] cells, int reps) { this.cells = cells; this.reps = reps; }
    void run() {
        for (int i = 0; i < reps; i++) {
            Cell c = cells[i % cells.length];
            synchronized (c) { c.v += 1; }
        }
    }
}
class Main {
    static int main() {
        int ncells = 8;
        int k = 8;
        int reps = 40;
        Cell[] cells = new Cell[ncells];
        for (int i = 0; i < ncells; i++) { cells[i] = new Cell(); }
        Bump[] ts = new Bump[k];
        for (int i = 0; i < k; i++) { ts[i] = new Bump(cells, reps); ts[i].start(); }
        int total = 0;
        for (int i = 0; i < k; i++) { ts[i].join(); }
        for (int i = 0; i < ncells; i++) { total += cells[i].v; }
        return total;
    }
}
"""

EXPECTED = 8 * 40


def _run(dsm: DsmConfig):
    cfg = RuntimeConfig(num_nodes=4, dsm=dsm)
    return run_distributed(source=WORKLOAD, config=cfg)


@pytest.fixture(scope="module")
def ablation_results():
    return {
        "scalar (MTS-HLRC)": _run(MTS_HLRC),
        "vector (HLRC)": _run(HLRC_BASELINE),
    }


def test_ablation_timestamps_regenerate(ablation_results, benchmark):
    benchmark.pedantic(lambda: _run(MTS_HLRC), rounds=1, iterations=1)
    lines = [f"{'mode':<22}{'time (ms)':>12}{'tokens':>9}{'fences':>9}"
             f"{'net bytes':>12}{'result':>9}"]
    for name, rep in ablation_results.items():
        d = rep.total_dsm()
        lines.append(
            f"{name:<22}{rep.simulated_ns / 1e6:>12.2f}"
            f"{d.token_transfers:>9}{d.fence_waits:>9}"
            f"{rep.net.bytes:>12}{rep.result:>9}"
        )
    emit("ablation_timestamps", "\n".join(lines))
    for rep in ablation_results.values():
        assert rep.result == EXPECTED


def test_both_modes_correct(ablation_results):
    for name, rep in ablation_results.items():
        assert rep.result == EXPECTED, name


def test_scalar_mode_pays_with_fences(ablation_results):
    """The §3.1 tradeoff: only the scalar mode delays lock transfers."""
    scalar = ablation_results["scalar (MTS-HLRC)"].total_dsm()
    vector = ablation_results["vector (HLRC)"].total_dsm()
    assert vector.fence_waits == 0
    # With 8 threads hammering 8 locks, some transfer must hit the fence.
    assert scalar.fence_waits > 0


def test_both_modes_transfer_tokens(ablation_results):
    for rep in ablation_results.values():
        assert rep.total_dsm().token_transfers > 10
