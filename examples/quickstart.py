"""Quickstart: run a monolithic multithreaded program on a simulated cluster.

The pipeline mirrors the paper's Figure 1:

    MiniJava source --(compiler)--> bytecode --(rewriter)--> distributed app
                                                   |
                          JavaSplit runtime on N simulated nodes

Run:  python examples/quickstart.py
"""

from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig, run_original

# A plain multithreaded Java-style program: no DSM API, no distribution
# awareness — the paper's "monolithic" input.
SOURCE = """
class Accumulator {
    int total;
    synchronized void add(int x) { total += x; }
}
class Worker extends Thread {
    Accumulator acc;
    int lo;
    int hi;
    Worker(Accumulator acc, int lo, int hi) {
        this.acc = acc; this.lo = lo; this.hi = hi;
    }
    void run() {
        int s = 0;
        for (int i = lo; i < hi; i++) { s += i * i; }
        acc.add(s);
    }
}
class Main {
    static int main() {
        Accumulator acc = new Accumulator();
        int k = 8;
        Worker[] ws = new Worker[k];
        for (int i = 0; i < k; i++) {
            ws[i] = new Worker(acc, i * 1000, (i + 1) * 1000);
            ws[i].start();
        }
        for (int i = 0; i < k; i++) { ws[i].join(); }
        Sys.print("sum of squares below 8000 = " + acc.total);
        return acc.total;
    }
}
"""


def main() -> None:
    # 1. "javac": compile once; only bytecode flows further.
    classfiles = compile_source(SOURCE)

    # 2. Baseline: the original program on one simulated JVM.
    base = run_original(classfiles=classfiles)
    print(f"original   : {base.simulated_seconds * 1e3:8.3f} ms simulated, "
          f"result={base.result}")

    # 3. Rewrite (all seven transformations of §4) and run on clusters.
    rewritten = rewrite_application(classfiles)
    print(f"rewriter   : {rewritten.stats}")
    for nodes in (1, 2, 4):
        runtime = JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=nodes))
        report = runtime.run()
        assert report.result == base.result, "coherence bug!"
        total = report.total_dsm()
        print(
            f"{nodes} node(s)  : {report.simulated_seconds * 1e3:8.3f} ms "
            f"simulated, result={report.result}, "
            f"msgs={report.net.messages}, fetches={total.fetches}, "
            f"tokens={total.token_transfers}, placements={report.placements}"
        )
    print("console    :", report.console)


if __name__ == "__main__":
    main()
