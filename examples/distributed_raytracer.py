"""Scaling the paper's 3D Ray Tracer across a simulated cluster (§6.2).

Renders the 64-sphere scene with two threads per node and prints the
execution-time/speedup curve, plus DSM traffic that shows *why* it
scales: the scene lives in static arrays, fetched once per node through
the C_static holder, while each worker writes only its own checksum.

Run:  python examples/distributed_raytracer.py
"""

from repro.apps import raytracer
from repro.runtime import RuntimeConfig, run_distributed, run_original

RESOLUTION = 16
SPHERES = 64
DILATION = 200  # see DESIGN.md §2: weak-scales compute vs communication


def main() -> None:
    base = run_original(
        source=raytracer.make_source(
            resolution=RESOLUTION, n_spheres=SPHERES, n_threads=2
        ),
        time_dilation=DILATION,
    )
    print(f"scene: {SPHERES} spheres at {RESOLUTION}x{RESOLUTION}, "
          f"checksum {base.result}")
    print(f"original (1 node, 2 threads): {base.simulated_seconds:.3f} s\n")
    print(f"{'nodes':>6}{'time (s)':>10}{'speedup':>9}{'fetches':>9}"
          f"{'net KB':>8}")
    for nodes in (1, 2, 4, 8):
        report = run_distributed(
            source=raytracer.make_source(
                resolution=RESOLUTION, n_spheres=SPHERES,
                n_threads=2 * nodes,
            ),
            config=RuntimeConfig(num_nodes=nodes, time_dilation=DILATION),
        )
        assert report.result == base.result
        print(f"{nodes:>6}{report.simulated_seconds:>10.3f}"
              f"{base.simulated_ns / report.simulated_ns:>9.2f}"
              f"{report.total_dsm().fetches:>9}"
              f"{report.net.bytes / 1024:>8.1f}")


if __name__ == "__main__":
    main()
