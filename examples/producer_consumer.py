"""Distributed producer/consumer over wait/notify (§3.2).

A bounded buffer with the classic synchronized wait/notify protocol.
After rewriting, the buffer's monitor is a migrating lock token whose
wait queue travels with ownership, so ``wait``/``notify``/``notifyAll``
never generate messages of their own — the §3.2 design point.  The
producer and consumer land on different simulated nodes, and the run
report shows lock-token transfers doing all the coordination.

Run:  python examples/producer_consumer.py
"""

from repro.runtime import RuntimeConfig, run_distributed, run_original

SOURCE = """
class BoundedBuffer {
    int[] items;
    int count;
    int head;
    int tail;
    BoundedBuffer(int capacity) { items = new int[capacity]; }
    synchronized void put(int x) {
        while (count == items.length) { this.wait(); }
        items[tail] = x;
        tail = (tail + 1) % items.length;
        count += 1;
        this.notifyAll();
    }
    synchronized int take() {
        while (count == 0) { this.wait(); }
        int x = items[head];
        head = (head + 1) % items.length;
        count -= 1;
        this.notifyAll();
        return x;
    }
}
class Producer extends Thread {
    BoundedBuffer buf;
    int n;
    Producer(BoundedBuffer buf, int n) { this.buf = buf; this.n = n; }
    void run() {
        for (int i = 1; i <= n; i++) { buf.put(i); }
        buf.put(-1);   // poison pill
    }
}
class Consumer extends Thread {
    BoundedBuffer buf;
    int sum;
    void run() {
        while (true) {
            int x = buf.take();
            if (x < 0) { break; }
            sum += x;
        }
    }
}
class Main {
    static int main() {
        BoundedBuffer buf = new BoundedBuffer(4);
        Producer p = new Producer(buf, 50);
        Consumer c = new Consumer();
        c.buf = buf;
        p.start();
        c.start();
        p.join();
        c.join();
        Sys.print("consumed sum = " + c.sum);
        return c.sum;
    }
}
"""


def main() -> None:
    base = run_original(source=SOURCE)
    report = run_distributed(
        source=SOURCE, config=RuntimeConfig(num_nodes=3)
    )
    assert report.result == base.result == sum(range(51))
    total = report.total_dsm()
    print("result        :", report.result, "(= 1+2+...+50)")
    print("console       :", report.console)
    print("placements    :", report.placements)
    print("token moves   :", total.token_transfers,
          "(every handoff carries the wait queue)")
    print("wait/notify   : zero dedicated messages — by construction")
    print("net messages  :", report.net.messages,
          f"({report.net.bytes} bytes)")


if __name__ == "__main__":
    main()
