"""A heterogeneous cluster: mixed JVM brands and a jittery network.

The paper's §6 explicitly mixes Sun and IBM JVMs in one execution; the
bytecode-rewriting approach makes the brand irrelevant to correctness.
This example runs branch-and-bound TSP on a cluster alternating brands,
with network jitter enabled (delivery order is restored by the
transport's sequence numbers), and shows that the answer is identical to
the homogeneous and original runs.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.apps import tsp
from repro.runtime import RuntimeConfig, run_distributed, run_original
from repro.sim import NS_PER_MS

CITIES = 8


def main() -> None:
    source = tsp.make_source(n_cities=CITIES, n_threads=8)
    base = run_original(source=source)
    print(f"original: best tour = {base.result} "
          f"({base.simulated_seconds * 1e3:.2f} ms)")

    mixed = RuntimeConfig(
        num_nodes=4,
        brands=["sun", "ibm", "sun", "ibm"],
        net_jitter_ns=2 * NS_PER_MS,
        seed=7,
    )
    report = run_distributed(source=source, config=mixed)
    assert report.result == base.result
    print(f"mixed sun/ibm cluster, jittery net: best tour = "
          f"{report.result} ({report.simulated_seconds * 1e3:.2f} ms)")
    print("placements by node:", report.placements)
    print("traffic by message type:")
    for mtype in sorted(report.net.by_type):
        n, b = report.net.by_type[mtype]
        print(f"  {mtype:<18} {n:>5} msgs {b:>8} bytes")


if __name__ == "__main__":
    main()
