"""Cycle stealing: idle machines join a running computation (§2).

"During execution, new workers can join the system and execute newly
created threads ... Scalable design allows JavaSplit to efficiently
utilize a large heterogeneous collection of machines, making it suitable
for wide-area cycle stealing."

This example runs a two-phase computation on a two-node cluster; between
the phases, two more machines (one of each JVM brand) enlist.  The late
joiners receive the rewritten classes, fault in shared objects on
demand, and the second wave of threads lands on them — no application
changes, no restart.

Run:  python examples/cycle_stealing.py
"""

from repro.lang import compile_source
from repro.rewriter import rewrite_application
from repro.runtime import JavaSplitRuntime, RuntimeConfig, run_original
from repro.sim import NS_PER_MS

SOURCE = """
class Sums { double total; }
class Cruncher extends Thread {
    Sums sums;
    int lo;
    int hi;
    Cruncher(Sums s, int lo, int hi) { sums = s; this.lo = lo; this.hi = hi; }
    void run() {
        double acc = 0.0;
        for (int i = lo; i < hi; i++) {
            acc += Math.sqrt((double) i + 1.0);
        }
        synchronized (sums) { sums.total += acc; }
    }
}
class Main {
    static void wave(Sums sums, int base) {
        Cruncher[] ts = new Cruncher[4];
        for (int i = 0; i < 4; i++) {
            ts[i] = new Cruncher(sums, base + i * 500, base + (i + 1) * 500);
            ts[i].start();
        }
        for (int i = 0; i < 4; i++) { ts[i].join(); }
    }
    static int main() {
        Sums sums = new Sums();
        wave(sums, 0);       // phase 1: the original two nodes
        wave(sums, 2000);    // phase 2: after the joiners arrived
        return (int) sums.total;
    }
}
"""


def main() -> None:
    base = run_original(source=SOURCE)
    print(f"original run: result = {base.result}")

    rewritten = rewrite_application(compile_source(SOURCE))
    rt = JavaSplitRuntime(rewritten, RuntimeConfig(num_nodes=2))
    rt.schedule_join(3 * NS_PER_MS)                # a Sun box enlists...
    rt.schedule_join(4 * NS_PER_MS, brand="ibm")   # ...then an IBM box
    report = rt.run()

    assert report.result == base.result
    print(f"with cycle stealing: result = {report.result} "
          f"({report.simulated_seconds * 1e3:.1f} ms simulated)")
    print(f"cluster grew 2 -> {len(rt.workers)} nodes mid-run")
    print("thread placements:", dict(sorted(report.placements.items())))
    for w in rt.workers[2:]:
        print(f"  joiner node{w.node_id} ({w.jvm.cost_model.brand}): "
              f"{w.dsm.stats.fetches} fetches, "
              f"{w.node.finished_streams} threads executed")


if __name__ == "__main__":
    main()
