#!/usr/bin/env python
"""Perf-regression gate over the committed ``BENCH_*.json`` snapshots.

The committed bench documents are seed-deterministic everywhere except
their wall-clock fields, so regressions split into two classes and the
gate treats them differently:

* **Deterministic observables** (simulated time, message/byte counts,
  DSM fetch/diff/token counts, program results) must match the
  committed snapshot *exactly*.  Any drift means runtime behaviour
  changed and the snapshot was not regenerated — the gate fails and
  names every diverging field.
* **Boolean guarantees** (``identical`` sim-vs-proc / interp-vs-jit,
  ``result_matches``, scenario ``ok``) may never regress from True in
  the baseline to False in the fresh run.
* **Wall-clock ratios** (``speedup_wall`` in the jit bench) are
  machine- and load-dependent, so they get a tolerance instead of
  equality: a fresh speedup may not fall below
  ``max(1.0, baseline * wall_tolerance)`` when the baseline showed a
  real speedup.  Absolute wall fields (``wall_seconds``, ``wall_ms``)
  are never compared — they don't survive a machine change.

Usage::

    PYTHONPATH=src python tools/bench_gate.py BENCH_9.json
    PYTHONPATH=src python tools/bench_gate.py BENCH_3.json --fresh out.json

Without ``--fresh`` the gate re-runs the matching bench in-process.
Exit status 0 = no regression, 1 = regression (errors on stdout),
2 = usage/document problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

#: Seed-deterministic per-run fields compared exactly when present.
DETERMINISTIC_KEYS = ("simulated_ms", "messages", "bytes", "fetches",
                      "diffs_sent", "token_transfers", "result")

#: Default floor factor for wall-clock speedup ratios.
WALL_TOLERANCE = 0.4


def _cmp_run(errors: List[str], where: str, base: Dict[str, Any],
             fresh: Optional[Dict[str, Any]]) -> None:
    """Exact-match the deterministic fields of one run entry."""
    if not isinstance(fresh, dict):
        errors.append(f"{where}: missing from fresh document")
        return
    for key in DETERMINISTIC_KEYS:
        if key not in base:
            continue
        if key not in fresh:
            errors.append(f"{where}.{key}: missing from fresh run")
        elif fresh[key] != base[key]:
            errors.append(f"{where}.{key}: baseline {base[key]!r} "
                          f"!= fresh {fresh[key]!r}")


def _cmp_flag(errors: List[str], where: str, base: Any,
              fresh: Any) -> None:
    """A True boolean guarantee may never regress to False."""
    if base is True and fresh is not True:
        errors.append(f"{where}: baseline True regressed to {fresh!r}")


def _compare_mode_bench(base: Dict[str, Any], fresh: Dict[str, Any],
                        errors: List[str]) -> None:
    """Shared shape of the locality / policy / jit documents:
    ``apps.<app>.runs.<mode>`` plus per-app boolean flags."""
    for app, b_entry in base.get("apps", {}).items():
        f_entry = fresh.get("apps", {}).get(app)
        if not isinstance(f_entry, dict):
            errors.append(f"apps.{app}: missing from fresh document")
            continue
        for flag in ("result_matches", "identical"):
            if flag in b_entry:
                _cmp_flag(errors, f"apps.{app}.{flag}",
                          b_entry[flag], f_entry.get(flag))
        for mode, b_run in b_entry.get("runs", {}).items():
            _cmp_run(errors, f"apps.{app}.runs.{mode}", b_run,
                     f_entry.get("runs", {}).get(mode))


def _compare_jit_wall(base: Dict[str, Any], fresh: Dict[str, Any],
                      wall_tolerance: float,
                      errors: List[str]) -> None:
    for app, b_entry in base.get("apps", {}).items():
        b_speed = b_entry.get("speedup_wall")
        f_entry = fresh.get("apps", {}).get(app) or {}
        f_speed = f_entry.get("speedup_wall")
        if not isinstance(b_speed, (int, float)) or b_speed <= 1.0:
            continue  # baseline showed no real speedup: nothing to hold
        floor = max(1.0, b_speed * wall_tolerance)
        if not isinstance(f_speed, (int, float)) or f_speed < floor:
            errors.append(
                f"apps.{app}.speedup_wall: fresh {f_speed!r} below floor "
                f"{floor:.2f} (baseline {b_speed} x tolerance "
                f"{wall_tolerance})")


def _compare_backends(base: Dict[str, Any], fresh: Dict[str, Any],
                      errors: List[str]) -> None:
    for app, b_entry in base.get("apps", {}).items():
        f_entry = fresh.get("apps", {}).get(app)
        if not isinstance(f_entry, dict):
            errors.append(f"apps.{app}: missing from fresh document")
            continue
        _cmp_flag(errors, f"apps.{app}.identical",
                  b_entry.get("identical"), f_entry.get("identical"))
        for run in ("sim", "proc"):
            if run in b_entry:
                _cmp_run(errors, f"apps.{app}.{run}", b_entry[run],
                         f_entry.get(run))


def _compare_serve(base: Dict[str, Any], fresh: Dict[str, Any],
                   errors: List[str]) -> None:
    _cmp_flag(errors, "ok", base.get("ok"), fresh.get("ok"))
    for name, b_sc in base.get("scenarios", {}).items():
        f_sc = fresh.get("scenarios", {}).get(name)
        if not isinstance(f_sc, dict):
            errors.append(f"scenarios.{name}: missing from fresh document")
            continue
        _cmp_flag(errors, f"scenarios.{name}.ok", b_sc.get("ok"),
                  f_sc.get("ok"))
        _cmp_run(errors, f"scenarios.{name}", b_sc, f_sc)
        for key in ("injected", "delivered", "completed"):
            b_v = b_sc.get("requests", {}).get(key)
            f_v = f_sc.get("requests", {}).get(key)
            if b_v is not None and f_v != b_v:
                errors.append(f"scenarios.{name}.requests.{key}: "
                              f"baseline {b_v!r} != fresh {f_v!r}")


def compare(baseline: Dict[str, Any], fresh: Dict[str, Any],
            wall_tolerance: float = WALL_TOLERANCE) -> List[str]:
    """All regressions of ``fresh`` against ``baseline`` (empty = pass)."""
    errors: List[str] = []
    kind = baseline.get("bench")
    if kind is None:
        return ["baseline document has no 'bench' key"]
    if fresh.get("bench") != kind:
        return [f"bench kind mismatch: baseline {kind!r} "
                f"!= fresh {fresh.get('bench')!r}"]
    if kind in ("locality", "policy", "jit"):
        _compare_mode_bench(baseline, fresh, errors)
        if kind == "jit":
            _compare_jit_wall(baseline, fresh, wall_tolerance, errors)
    elif kind == "backends":
        _compare_backends(baseline, fresh, errors)
    elif kind == "serve":
        _compare_serve(baseline, fresh, errors)
    else:
        errors.append(f"unknown bench kind {kind!r}")
    return errors


def generate(baseline: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run the bench matching the baseline document, in-process."""
    from repro.bench.jsonbench import (BASE_MODES, run_backend_bench,
                                       run_bench, run_jit_bench,
                                       run_policy_bench)

    kind = baseline.get("bench")
    nodes = baseline.get("nodes", 3)
    if kind == "locality":
        ablation = set(baseline.get("modes", BASE_MODES)) != set(BASE_MODES)
        return run_bench(nodes=nodes, ablation=ablation)
    if kind == "policy":
        return run_policy_bench(nodes=nodes)
    if kind == "backends":
        return run_backend_bench(nodes=nodes)
    if kind == "jit":
        return run_jit_bench(nodes=nodes)
    if kind == "serve":
        from repro.serve import PRESETS, run_scenario

        seed = baseline.get("seed", 0)
        backend = baseline.get("backend", "sim")
        return {
            "bench": "serve",
            "schema": baseline.get("schema", 1),
            "backend": backend,
            "seed": seed,
            "scenarios": {name: run_scenario(PRESETS[name], seed=seed,
                                             backend=backend)
                          for name in baseline.get("scenarios", {})
                          if name in PRESETS},
            "ok": True,
        }
    raise ValueError(f"cannot regenerate bench kind {kind!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a fresh bench run regresses vs a "
                    "committed BENCH_*.json snapshot")
    parser.add_argument("baseline", help="committed snapshot JSON path")
    parser.add_argument("--fresh", default=None, metavar="FILE",
                        help="fresh bench JSON to compare (default: "
                             "re-run the matching bench in-process)")
    parser.add_argument("--wall-tolerance", type=float,
                        default=WALL_TOLERANCE, metavar="F",
                        help="speedup_wall floor factor (default %(default)s)")
    args = parser.parse_args(argv)

    try:
        baseline = json.load(open(args.baseline))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    if args.fresh is not None:
        try:
            fresh = json.load(open(args.fresh))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read fresh document: {exc}",
                  file=sys.stderr)
            return 2
    else:
        kind = baseline.get("bench")
        print(f"bench_gate: regenerating {kind!r} bench "
              f"(nodes={baseline.get('nodes', 3)})...")
        fresh = generate(baseline)

    errors = compare(baseline, fresh, wall_tolerance=args.wall_tolerance)
    if errors:
        print(f"bench_gate: REGRESSION vs {args.baseline} "
              f"({len(errors)} finding(s)):")
        for err in errors:
            print(f"  - {err}")
        return 1
    ok = sum(1 for _ in baseline.get("apps", baseline.get("scenarios", {})))
    print(f"bench_gate: OK — {args.baseline} matches "
          f"({ok} app(s)/scenario(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
