"""Repackage installed distributions as local wheels (offline bootstrap).

PEP 517 build isolation needs to pip-install `setuptools` and `wheel`
into a fresh environment; with no index access that fails.  This script
rebuilds both as wheels from the running environment into
``packages/`` so a ``find-links`` entry can satisfy isolation offline.
"""

import base64
import hashlib
import os
import site
import sys
import zipfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
OUT = os.path.join(REPO, "packages")


def _b64(digest):
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode()


def build_wheel(dist_name):
    sp = site.getsitepackages()[0]
    dist_info = next(
        d for d in os.listdir(sp)
        if d.lower().startswith(dist_name.lower() + "-")
        and d.endswith(".dist-info")
    )
    version = dist_info[len(dist_name) + 1:-len(".dist-info")]
    wheel_name = f"{dist_name}-{version}-py3-none-any.whl"
    os.makedirs(OUT, exist_ok=True)
    out_path = os.path.join(OUT, wheel_name)

    records = []

    def add(zf, path, arcname):
        with open(path, "rb") as fh:
            data = fh.read()
        zf.writestr(arcname, data)
        records.append(
            f"{arcname},sha256={_b64(hashlib.sha256(data).digest())},{len(data)}"
        )

    # Top-level packages/modules come from the dist's RECORD.
    top_level = set()
    with open(os.path.join(sp, dist_info, "RECORD")) as fh:
        for line in fh:
            name = line.split(",")[0]
            head = name.split("/")[0]
            if not head.endswith(".dist-info") and head != "..":
                top_level.add(head)

    with zipfile.ZipFile(out_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for head in sorted(top_level):
            full = os.path.join(sp, head)
            if os.path.isdir(full):
                for root, dirs, files in os.walk(full):
                    dirs[:] = [d for d in dirs if d != "__pycache__"]
                    for f in sorted(files):
                        p = os.path.join(root, f)
                        arc = os.path.relpath(p, sp).replace(os.sep, "/")
                        add(zf, p, arc)
            elif os.path.isfile(full):
                add(zf, full, head)
        # dist-info: METADATA, entry_points, WHEEL, then RECORD last.
        di_src = os.path.join(sp, dist_info)
        for f in sorted(os.listdir(di_src)):
            if f in ("RECORD", "INSTALLER", "REQUESTED", "direct_url.json"):
                continue
            add(zf, os.path.join(di_src, f), f"{dist_info}/{f}")
        wheel_meta = f"{dist_info}/WHEEL"
        if not any(r.startswith(wheel_meta + ",") for r in records):
            data = (b"Wheel-Version: 1.0\nGenerator: local-repack\n"
                    b"Root-Is-Purelib: true\nTag: py3-none-any\n")
            zf.writestr(wheel_meta, data)
            records.append(
                f"{wheel_meta},sha256="
                f"{_b64(hashlib.sha256(data).digest())},{len(data)}"
            )
        records.append(f"{dist_info}/RECORD,,")
        zf.writestr(f"{dist_info}/RECORD", "\n".join(records) + "\n")
    print("built", out_path)


if __name__ == "__main__":
    for name in sys.argv[1:] or ("setuptools", "wheel"):
        build_wheel(name)
