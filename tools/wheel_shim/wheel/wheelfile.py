"""A RECORD-writing ZipFile, API-compatible with wheel.wheelfile."""

import base64
import hashlib
import os
import zipfile


def _urlsafe_b64(digest: bytes) -> str:
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression)
        self._records = []
        name = os.path.basename(str(file))
        # {dist}-{version}-... .whl -> {dist}-{version}.dist-info/RECORD
        parts = name.split("-")
        self.record_path = "-".join(parts[:2]) + ".dist-info/RECORD"

    # -- recording wrappers -------------------------------------------
    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else zinfo_or_arcname
        )
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._record(arcname, data)

    def write(self, filename, arcname=None, *args, **kwargs):
        super().write(filename, arcname, *args, **kwargs)
        with open(filename, "rb") as fh:
            data = fh.read()
        self._record(arcname or filename, data)

    def write_files(self, base_dir):
        for root, _dirs, files in os.walk(base_dir):
            for fname in sorted(files):
                path = os.path.join(root, fname)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                self.write(path, arcname)

    def _record(self, arcname, data):
        if arcname == self.record_path:
            return
        digest = hashlib.sha256(data).digest()
        self._records.append(
            f"{arcname},sha256={_urlsafe_b64(digest)},{len(data)}"
        )

    def close(self):
        if self.mode == "w" and self._records is not None:
            lines = self._records + [f"{self.record_path},,", ""]
            self._records = None
            super().writestr(self.record_path, "\n".join(lines))
        super().close()
