"""Just enough of wheel.bdist_wheel for setuptools' editable_wheel."""

import sys

from setuptools import Command

WHEEL_TEMPLATE = """\
Wheel-Version: 1.0
Generator: wheel-shim (0.0.0)
Root-Is-Purelib: {purelib}
Tag: {tag}
"""


class bdist_wheel(Command):
    description = "minimal bdist_wheel (editable installs only)"
    user_options = []

    def initialize_options(self):
        self.dist_dir = None

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"

    def get_tag(self):
        # Pure-python projects only (which is all this shim supports).
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base, generator=None):
        import os

        tag = "-".join(self.get_tag())
        content = WHEEL_TEMPLATE.format(purelib="true", tag=tag)
        with open(os.path.join(wheelfile_base, "WHEEL"), "w") as fh:
            fh.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an .egg-info directory into a .dist-info directory."""
        import os
        import shutil

        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)
        pkg_info = os.path.join(egginfo_path, "PKG-INFO")
        if os.path.exists(pkg_info):
            shutil.copyfile(pkg_info, os.path.join(distinfo_path, "METADATA"))
        for extra in ("entry_points.txt", "top_level.txt"):
            src = os.path.join(egginfo_path, extra)
            if os.path.exists(src):
                shutil.copyfile(src, os.path.join(distinfo_path, extra))
        if os.path.isdir(egginfo_path):
            shutil.rmtree(egginfo_path, ignore_errors=True)

    def run(self):  # pragma: no cover - editable installs never call run
        raise RuntimeError(
            "wheel-shim only supports editable installs; install the real "
            "'wheel' package to build distributions"
        )
