"""Minimal offline stand-in for the `wheel` package.

Provides exactly the surface setuptools' PEP 660 editable-install path
uses (`wheel.wheelfile.WheelFile` and the `bdist_wheel` command), so
`pip install -e .` works on machines without network access to PyPI.
Install with:  python tools/wheel_shim/install.py
"""

__version__ = "0.38.4+shim"
