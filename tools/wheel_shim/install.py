"""Install the wheel shim into site-packages (offline environments).

Copies the `wheel` shim package and writes a dist-info with the
`distutils.commands` entry point setuptools uses to resolve the
`bdist_wheel` command.  A real `wheel` installation always wins: the
script refuses to overwrite one.
"""

import os
import shutil
import site
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def main():
    # Don't let the shim directory itself satisfy the check.
    probe_path = [p for p in sys.path if os.path.abspath(p) != HERE]
    import importlib.util

    spec = importlib.util.find_spec("wheel")
    if spec is not None and os.path.dirname(
        os.path.abspath(spec.origin or "")
    ) != os.path.join(HERE, "wheel"):
        print("a 'wheel' package is already installed; nothing to do")
        return 0
    target = site.getsitepackages()[0]
    pkg_dst = os.path.join(target, "wheel")
    shutil.copytree(os.path.join(HERE, "wheel"), pkg_dst)
    dist_info = os.path.join(target, "wheel-0.38.4+shim.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w") as fh:
        fh.write("Metadata-Version: 2.1\nName: wheel\nVersion: 0.38.4+shim\n")
    with open(os.path.join(dist_info, "entry_points.txt"), "w") as fh:
        fh.write("[distutils.commands]\nbdist_wheel = wheel.bdist_wheel:bdist_wheel\n")
    with open(os.path.join(dist_info, "RECORD"), "w") as fh:
        for root, _dirs, files in os.walk(pkg_dst):
            for f in sorted(files):
                rel = os.path.relpath(os.path.join(root, f), target)
                fh.write(rel.replace(os.sep, "/") + ",,\n")
        fh.write(os.path.basename(dist_info) + "/RECORD,,\n")
    print(f"wheel shim installed into {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
